#include "audit/auditor.hh"

#include <algorithm>
#include <sstream>

#include "ssd/ssd.hh"

namespace ida::audit {

namespace {

/** Keep a corrupt run's report readable; totalViolations() is exact. */
constexpr std::size_t kMaxStoredViolations = 100;

template <typename... Ts>
std::string
cat(Ts &&...parts)
{
    std::ostringstream os;
    (os << ... << parts);
    return os.str();
}

} // namespace

Auditor::Auditor(ssd::Ssd &ssd) : ssd_(ssd)
{
    const bool pageMapped =
        ssd.backend().kind() == ftl::BackendKind::PageMapped;
    // The flash-level checks are backend-agnostic; the structural and
    // conservation checks come in one flavor per backend (see the file
    // comment's catalog).
    if (pageMapped)
        registerCheck("mapping-block",
                      [](Auditor &a) { a.checkMappingBlock(); });
    registerCheck("wordline-cache",
                  [](Auditor &a) { a.checkWordlineCache(); });
    registerCheck("ida-coding", [](Auditor &a) { a.checkIdaCoding(); });
    registerCheck("event-queue", [](Auditor &a) { a.checkEventQueue(); });
    if (pageMapped)
        registerCheck("block-accounting",
                      [](Auditor &a) { a.checkBlockAccounting(); });
    registerCheck("sector-validity",
                  [](Auditor &a) { a.checkSectorValidity(); });
    if (pageMapped) {
        registerCheck("cache-coherence",
                      [](Auditor &a) { a.checkCacheCoherence(); });
        registerCheck("conservation",
                      [](Auditor &a) { a.checkConservation(); });
    } else {
        registerCheck("zns-zone-state",
                      [](Auditor &a) { a.checkZnsZoneState(); });
        registerCheck("zns-conservation",
                      [](Auditor &a) { a.checkZnsConservation(); });
    }
    base_ = captureBaseline();
}

void
Auditor::registerCheck(std::string name, CheckFn fn)
{
    checks_.emplace_back(std::move(name), std::move(fn));
}

void
Auditor::fail(std::string detail)
{
    ++totalViolations_;
    if (violations_.size() < kMaxStoredViolations) {
        violations_.push_back(Violation{
            currentCheck_ ? *currentCheck_ : std::string("manual"),
            std::move(detail)});
    }
}

std::size_t
Auditor::runAll()
{
    const std::uint64_t before = totalViolations_;
    for (auto &[name, fn] : checks_) {
        currentCheck_ = &name;
        fn(*this);
    }
    currentCheck_ = nullptr;
    ++runs_;
    lastAuditExecuted_ = ssd_.events().executed();
    return static_cast<std::size_t>(totalViolations_ - before);
}

bool
Auditor::maybeRun(std::uint64_t every_events)
{
    if (every_events == 0)
        return false;
    if (ssd_.events().executed() - lastAuditExecuted_ < every_events)
        return false;
    runAll();
    return true;
}

void
Auditor::arm(std::uint64_t every_events)
{
#ifdef IDA_AUDIT
    ssd_.events().setAuditHook(every_events, [this] { runAll(); });
#else
    (void)every_events;
#endif
}

void
Auditor::rebase()
{
    base_ = captureBaseline();
}

std::string
Auditor::summary() const
{
    std::ostringstream os;
    os << "audit: " << runs_ << " run(s), " << totalViolations_
       << " violation(s)";
    const std::size_t show = std::min<std::size_t>(violations_.size(), 5);
    for (std::size_t i = 0; i < show; ++i)
        os << "\n  [" << violations_[i].check << "] "
           << violations_[i].detail;
    if (totalViolations_ > show)
        os << "\n  ... " << (totalViolations_ - show) << " more";
    return os.str();
}

Auditor::Baseline
Auditor::captureBaseline() const
{
    if (ssd_.backend().kind() == ftl::BackendKind::Zns) {
        const auto &z = ssd_.backend().zns();
        const auto &cs = ssd_.chips().stats();
        Baseline b;
        b.chipPrograms = cs.programs;
        b.chipErases = cs.erases;
        b.refreshMigrated = z.stats().refresh.migratedPages;
        b.znsAppendedPages = z.znsStats().appendedPages;
        b.znsResetErases = z.znsStats().resetErases;
        b.znsRefreshErases = z.znsStats().refreshErases;
        return b;
    }
    const auto &fs = ssd_.ftl().stats();
    const auto &ws = ssd_.ftl().writeBufferStats();
    const auto &cs = ssd_.chips().stats();
    Baseline b;
    b.chipPrograms = cs.programs;
    b.chipErases = cs.erases;
    b.hostWrites = fs.hostWrites;
    b.hostTrims = fs.hostTrims;
    b.preloadWrites = fs.preloadWrites;
    b.gcMigrated = fs.gc.migratedPages;
    b.gcErases = fs.gc.erases;
    b.refreshMigrated = fs.refresh.migratedPages;
    b.refreshExtraWrites = fs.refresh.extraWrites;
    b.wbBuffered = ws.bufferedWrites;
    b.wbCoalesced = ws.coalescedWrites;
    b.wbFlushes = ws.flushes;
    b.wbTrimmed = ws.trimmed;
    b.wbSize = ssd_.ftl().writeBuffer().size();
    b.rmwInFlight = ssd_.ftl().rmwInFlight();
    return b;
}

void
Auditor::checkMappingBlock()
{
    const auto &ftl = ssd_.ftl();
    const auto &map = ftl.mapping();
    const auto &chips = ssd_.chips();
    const auto &geom = chips.geometry();
    const std::uint32_t ppb = geom.pagesPerBlock;

    // Forward pass: every live L2P entry points into range, at a Valid
    // page, and the P2L inverse points back.
    std::uint64_t forwardMapped = 0;
    for (flash::Lpn lpn = 0; lpn < map.logicalPages(); ++lpn) {
        const flash::Ppn ppn = map.lookup(lpn);
        if (ppn == flash::kInvalidPpn)
            continue;
        ++forwardMapped;
        if (ppn >= map.physicalPages()) {
            fail(cat("lpn ", lpn, " maps to out-of-range ppn ", ppn));
            continue;
        }
        if (map.reverse(ppn) != lpn)
            fail(cat("l2p/p2l disagree: lpn ", lpn, " -> ppn ", ppn,
                     " -> lpn ", map.reverse(ppn)));
        const auto &blk = chips.block(geom.blockOf(ppn));
        if (!blk.isValid(static_cast<std::uint32_t>(ppn % ppb)))
            fail(cat("lpn ", lpn, " maps to ppn ", ppn,
                     " whose page state is not Valid"));
    }
    if (forwardMapped != map.mappedCount())
        fail(cat("mappedCount ", map.mappedCount(), " != ",
                 forwardMapped, " live l2p entries"));

    // Block sweep: P2L inverse agreement, write-pointer discipline
    // (in-order programming: Free exactly at and above the pointer),
    // the incrementally maintained validCount, and the device-wide
    // valid-page total.
    std::uint64_t reverseMapped = 0;
    std::uint64_t totalValid = 0;
    for (flash::BlockId b = 0; b < geom.blocks(); ++b) {
        const auto &blk = chips.block(b);
        std::uint32_t validHere = 0;
        for (std::uint32_t p = 0; p < ppb; ++p) {
            const flash::Ppn ppn = geom.firstPpnOf(b) + p;
            const bool valid = blk.isValid(p);
            const flash::Lpn lpn = map.reverse(ppn);
            if (valid)
                ++validHere;
            if (lpn != flash::kInvalidLpn) {
                ++reverseMapped;
                if (lpn >= map.logicalPages())
                    fail(cat("ppn ", ppn, " reverse-maps to out-of-range "
                             "lpn ", lpn));
                else if (map.lookup(lpn) != ppn)
                    fail(cat("p2l/l2p disagree: ppn ", ppn, " -> lpn ",
                             lpn, " -> ppn ", map.lookup(lpn)));
                if (!valid)
                    fail(cat("block ", b, " page ", p,
                             ": mapped but not Valid"));
            } else if (valid) {
                fail(cat("block ", b, " page ", p,
                         ": Valid page with no reverse mapping"));
            }
            if (p < blk.writePointer()) {
                if (blk.isFree(p))
                    fail(cat("block ", b, " page ", p,
                             ": Free below the write pointer"));
            } else if (!blk.isFree(p)) {
                fail(cat("block ", b, " page ", p,
                         ": programmed at/above the write pointer"));
            }
        }
        if (validHere != blk.validCount())
            fail(cat("block ", b, ": validCount ", blk.validCount(),
                     " != recount ", validHere));
        totalValid += validHere;
    }
    if (reverseMapped != forwardMapped)
        fail(cat("p2l live entries ", reverseMapped,
                 " != l2p live entries ", forwardMapped));
    if (totalValid != map.mappedCount())
        fail(cat("total Valid pages ", totalValid, " != mappedCount ",
                 map.mappedCount()));
}

void
Auditor::checkWordlineCache()
{
    const auto &chips = ssd_.chips();
    const auto &geom = chips.geometry();
    for (flash::BlockId b = 0; b < geom.blocks(); ++b) {
        const auto &blk = chips.block(b);
        for (std::uint32_t wl = 0; wl < blk.numWordlines(); ++wl) {
            const flash::LevelMask cached = blk.invalidLevelMask(wl);
            const flash::LevelMask truth = blk.recomputeInvalidMask(wl);
            if (cached != truth)
                fail(cat("block ", b, " wl ", wl,
                         ": cached invalid mask ", int(cached),
                         " != recomputed ", int(truth)));
        }
    }
}

void
Auditor::checkIdaCoding()
{
    const auto &chips = ssd_.chips();
    const auto &geom = chips.geometry();
    const auto &scheme = chips.coding();
    const flash::LevelMask full = flash::fullMask(scheme.bits());
    const int numStates = scheme.numStates();

    for (flash::BlockId b = 0; b < geom.blocks(); ++b) {
        const auto &blk = chips.block(b);
        bool anyIda = false;
        for (std::uint32_t wl = 0; wl < blk.numWordlines(); ++wl) {
            const flash::LevelMask mask = blk.wordlineMask(wl);
            if (mask == 0 || (mask & ~full) != 0) {
                fail(cat("block ", b, " wl ", wl,
                         ": wordline mask ", int(mask),
                         " outside (0, full]"));
                continue;
            }
            if (mask == full)
                continue;
            anyIda = true;

            // IDA only applies to fully programmed wordlines and never
            // drops a level whose page is still live.
            for (int level = 0; level < scheme.bits(); ++level) {
                const auto page = static_cast<std::uint32_t>(
                    wl * static_cast<std::uint32_t>(scheme.bits()) +
                    static_cast<std::uint32_t>(level));
                const flash::PageState st = blk.pageState(page);
                if (st == flash::PageState::Free)
                    fail(cat("block ", b, " wl ", wl, " level ", level,
                             ": IDA wordline has a Free page"));
                else if (((mask >> level) & 1u) == 0 &&
                         st == flash::PageState::Valid)
                    fail(cat("block ", b, " wl ", wl, " level ", level,
                             ": dropped level still holds Valid data"));
            }

            // The memoized merge the reads of this wordline will use.
            const flash::IdaMerge &m = scheme.idaMerge(mask);
            if (m.validMask != mask) {
                fail(cat("idaMerge(", int(mask), ") cached for mask ",
                         int(m.validMask)));
                continue;
            }
            if (static_cast<int>(m.stateMap.size()) != numStates) {
                fail(cat("idaMerge(", int(mask), "): stateMap size ",
                         m.stateMap.size(), " != ", numStates));
                continue;
            }
            std::vector<bool> isSurvivor(
                static_cast<std::size_t>(numStates), false);
            for (std::size_t i = 0; i < m.survivors.size(); ++i) {
                const int s = m.survivors[i];
                if (s < 0 || s >= numStates) {
                    fail(cat("idaMerge(", int(mask),
                             "): survivor out of range: ", s));
                    continue;
                }
                if (i > 0 && m.survivors[i - 1] >= s)
                    fail(cat("idaMerge(", int(mask),
                             "): survivors not strictly ascending"));
                isSurvivor[static_cast<std::size_t>(s)] = true;
            }
            for (int s = 0; s < numStates; ++s) {
                const int t = m.stateMap[static_cast<std::size_t>(s)];
                if (t < s || t >= numStates) {
                    // ISPP can only add charge: states move up, never
                    // down (paper Sec. III-B).
                    fail(cat("idaMerge(", int(mask), "): state ", s,
                             " maps down/out of range to ", t));
                    continue;
                }
                if (!isSurvivor[static_cast<std::size_t>(t)])
                    fail(cat("idaMerge(", int(mask), "): state ", s,
                             " maps to non-survivor ", t));
                if (m.stateMap[static_cast<std::size_t>(t)] != t)
                    fail(cat("idaMerge(", int(mask), "): target ", t,
                             " is not a fixed point"));
            }
            for (int level = 0; level < scheme.bits(); ++level) {
                const int n =
                    m.sensingCounts[static_cast<std::size_t>(level)];
                const auto nv = static_cast<int>(
                    m.readVoltages[static_cast<std::size_t>(level)]
                        .size());
                if (((mask >> level) & 1u) != 0) {
                    if (n < 1 || n > scheme.sensingCount(level))
                        fail(cat("idaMerge(", int(mask), "): level ",
                                 level, " sensing count ", n,
                                 " outside [1, conventional ",
                                 scheme.sensingCount(level), "]"));
                    if (nv != n)
                        fail(cat("idaMerge(", int(mask), "): level ",
                                 level, " has ", nv,
                                 " read voltages for ", n, " sensings"));
                } else if (n != 0 || nv != 0) {
                    fail(cat("idaMerge(", int(mask),
                             "): invalid level ", level,
                             " still has sensings/voltages"));
                }
            }
        }
        if (blk.isIdaBlock() != anyIda)
            fail(cat("block ", b, ": isIdaBlock ", blk.isIdaBlock(),
                     " but ", anyIda ? "has" : "has no",
                     " IDA wordlines"));
    }
}

void
Auditor::checkEventQueue()
{
    std::string why;
    if (!ssd_.events().validateHeap(&why))
        fail(std::move(why));
}

void
Auditor::checkBlockAccounting()
{
    const auto &ftl = ssd_.ftl();
    const auto &bm = ftl.blocks();
    const auto &chips = ssd_.chips();
    const auto &geom = chips.geometry();
    const sim::Time now = ssd_.events().now();
    // finalizePreload may legitimately post-date refreshedAt by up to
    // (preloadAgeSpread - refreshPeriod) when the spread is the larger.
    const sim::Time refreshSlack = std::max(
        sim::Time{},
        ftl.config().preloadAgeSpread - ftl.config().refreshPeriod);

    std::vector<std::uint64_t> freeByPlane(geom.planes(), 0);
    std::uint64_t closed = 0;
    for (flash::BlockId b = 0; b < geom.blocks(); ++b) {
        const auto m = bm.meta(b);
        const auto &blk = chips.block(b);
        if (m.hostActive() && m.internalActive())
            fail(cat("block ", b, ": both host- and internal-active"));
        if (m.inFreePool()) {
            ++freeByPlane[geom.planeOfBlock(b)];
            if (m.hostActive() || m.internalActive())
                fail(cat("block ", b, ": pooled but active"));
            if (m.busyWithJob())
                fail(cat("block ", b, ": pooled but busy with a job"));
            if (!blk.isErased())
                fail(cat("block ", b, ": pooled but not erased"));
        } else if (!m.hostActive() && !m.internalActive()) {
            ++closed;
        }
        if (m.refreshedAt() > now + refreshSlack)
            fail(cat("block ", b, ": refreshedAt ", m.refreshedAt(),
                     " is in the future (now ", now, ")"));
        if (blk.programTime() > now)
            fail(cat("block ", b, ": programTime ", blk.programTime(),
                     " is in the future (now ", now, ")"));
    }
    for (std::uint64_t plane = 0; plane < geom.planes(); ++plane) {
        if (bm.freeCount(plane) != freeByPlane[plane])
            fail(cat("plane ", plane, ": freeCount ",
                     bm.freeCount(plane), " != ", freeByPlane[plane],
                     " blocks flagged inFreePool"));
    }
    if (bm.inUseBlocks() != closed)
        fail(cat("inUseBlocks ", bm.inUseBlocks(), " != recount ",
                 closed));
}

void
Auditor::checkSectorValidity()
{
    const auto &chips = ssd_.chips();
    const auto &geom = chips.geometry();
    const std::uint32_t ppb = geom.pagesPerBlock;
    for (flash::BlockId b = 0; b < geom.blocks(); ++b) {
        const auto &blk = chips.block(b);
        const flash::SectorMask full = blk.fullSectorMask();
        for (std::uint32_t p = 0; p < ppb; ++p) {
            const flash::SectorMask m = blk.sectorMask(p);
            if ((m & ~full) != 0)
                fail(cat("block ", b, " page ", p, ": sector mask 0x",
                         std::hex, m, std::dec,
                         " has bits beyond sectorsPerPage"));
            // A page is Valid exactly while it has live sectors; a
            // partial invalidation that clears the last sector must
            // have flipped the state (and vice versa for Free/Invalid).
            if (blk.isValid(p) != (m != 0))
                fail(cat("block ", b, " page ", p, ": page state ",
                         blk.isValid(p) ? "Valid" : "not Valid",
                         " disagrees with sector mask 0x", std::hex, m,
                         std::dec));
        }
    }
}

void
Auditor::checkCacheCoherence()
{
    const auto &ftl = ssd_.ftl();
    const auto &rc = ftl.readCache();
    const auto &wb = ftl.writeBuffer();
    const auto &map = ftl.mapping();
    const auto &chips = ssd_.chips();
    const auto &geom = chips.geometry();
    const std::uint32_t ppb = geom.pagesPerBlock;
    const flash::SectorMask full = geom.fullSectorMask();

    if (!rc.enabled()) {
        if (rc.size() != 0)
            fail(cat("read cache disabled but holds ", rc.size(),
                     " lines"));
        return;
    }
    if (rc.size() > rc.config().capacityPages)
        fail(cat("read cache holds ", rc.size(), " lines, capacity ",
                 rc.config().capacityPages));

    std::uint64_t lines = 0;
    rc.forEachLine([&](flash::Lpn lpn, flash::SectorMask cached) {
        ++lines;
        if (cached == 0) {
            fail(cat("cache line lpn ", lpn, " has an empty mask"));
            return;
        }
        if ((cached & ~full) != 0)
            fail(cat("cache line lpn ", lpn, ": mask 0x", std::hex,
                     cached, std::dec, " has bits beyond "
                     "sectorsPerPage"));
        if (lpn >= map.logicalPages()) {
            fail(cat("cache line lpn ", lpn, " out of logical range"));
            return;
        }
        if (rc.peek(lpn) != cached) {
            fail(cat("cache line lpn ", lpn, ": LRU list mask 0x",
                     std::hex, cached, " != index mask 0x",
                     rc.peek(lpn), std::dec));
            return;
        }
        // The coherence invariant: a cached sector is backed by the
        // flash copy or by a dirty write-buffer entry. Anything else
        // means a write/TRIM ran without invalidating the cache, or a
        // zero-fill hole was inserted.
        flash::SectorMask backed = wb.dirtyMask(lpn) & full;
        const flash::Ppn ppn = map.lookup(lpn);
        if (ppn != flash::kInvalidPpn)
            backed |= chips.block(geom.blockOf(ppn))
                          .sectorMask(
                              static_cast<std::uint32_t>(ppn % ppb));
        if ((cached & ~backed) != 0)
            fail(cat("cache line lpn ", lpn, ": cached mask 0x",
                     std::hex, cached, " not covered by flash+buffer 0x",
                     backed, std::dec));
    });
    if (lines != rc.size())
        fail(cat("cache LRU list has ", lines, " lines, index has ",
                 rc.size()));
}

void
Auditor::checkConservation()
{
    const auto &ftl = ssd_.ftl();
    const auto &fs = ftl.stats();
    if (fs.hostWrites < base_.hostWrites) {
        // An external counter reset (Ftl::resetReadClassification zeroes
        // hostWrites when the measurement window opens): re-anchor the
        // deltas instead of reporting phantom violations.
        rebase();
        return;
    }
    const auto &ws = ftl.writeBufferStats();
    const auto &cs = ssd_.chips().stats();
    const auto &wb = ftl.writeBuffer();

    const std::uint64_t dWrites = fs.hostWrites - base_.hostWrites;
    const std::uint64_t dBuffered = ws.bufferedWrites - base_.wbBuffered;
    const std::uint64_t dCoalesced =
        ws.coalescedWrites - base_.wbCoalesced;
    const std::uint64_t dFlushes = ws.flushes - base_.wbFlushes;
    const std::uint64_t dTrimmed = ws.trimmed - base_.wbTrimmed;
    const std::uint64_t dPrograms = cs.programs - base_.chipPrograms;
    const std::uint64_t dGcMig = fs.gc.migratedPages - base_.gcMigrated;
    const std::uint64_t dRefMig =
        fs.refresh.migratedPages - base_.refreshMigrated;
    const std::uint64_t dRefExtra =
        fs.refresh.extraWrites - base_.refreshExtraWrites;

    // A sub-page write whose surviving sectors need a read-modify-write
    // merge is counted (host write or buffer destage) when accepted,
    // but its program is only issued when the merge read completes —
    // subtract the merges still in flight at this instant.
    const std::int64_t dRmw =
        static_cast<std::int64_t>(ftl.rmwInFlight()) -
        static_cast<std::int64_t>(base_.rmwInFlight);

    // Every timed program is a write-through host write, a buffer
    // destage, a GC migration, or a refresh migration/write-back
    // (preloads use programImmediate, which is not a timed program).
    const std::int64_t expected =
        static_cast<std::int64_t>((dWrites - dBuffered - dCoalesced) +
                                  dFlushes + dGcMig + dRefMig +
                                  dRefExtra) -
        dRmw;
    if (ftl.config().moveToLsbAlternative) {
        // queueMigration counts the page before flushMigrations may
        // prune it (source invalidated while buffered), so the counter
        // can only overstate the programs actually issued.
        if (static_cast<std::int64_t>(dPrograms) > expected)
            fail(cat("programs ", dPrograms,
                     " exceed accounted writes ", expected,
                     " (move-to-LSB mode)"));
    } else if (static_cast<std::int64_t>(dPrograms) != expected) {
        fail(cat("programs ", dPrograms, " != accounted writes ",
                 expected, " (host ", dWrites, " - buffered ",
                 dBuffered, " - coalesced ", dCoalesced, " + flushes ",
                 dFlushes, " + gc ", dGcMig, " + refresh ", dRefMig,
                 " + writeback ", dRefExtra, " - rmw in flight ", dRmw,
                 ")"));
    }

    const std::uint64_t dChipErases = cs.erases - base_.chipErases;
    const std::uint64_t dFtlErases = fs.gc.erases - base_.gcErases;
    if (dChipErases != dFtlErases)
        fail(cat("chip erases ", dChipErases,
                 " != FTL-issued erases ", dFtlErases));

    const std::uint64_t expectSize =
        base_.wbSize + dBuffered - dFlushes - dTrimmed;
    if (wb.size() != expectSize)
        fail(cat("write buffer holds ", wb.size(), " dirty pages, "
                 "counters say ", expectSize));
    if (wb.enabled() && wb.size() > wb.config().capacityPages)
        fail(cat("write buffer occupancy ", wb.size(),
                 " exceeds capacity ", wb.config().capacityPages));
}

void
Auditor::checkZnsZoneState()
{
    const auto &z = ssd_.backend().zns();
    const auto &chips = ssd_.chips();
    const auto &geom = chips.geometry();
    const std::uint32_t ppb = geom.pagesPerBlock;
    const std::uint32_t bpz = z.znsConfig().blocksPerZone;
    const std::uint64_t cap = z.zoneCapacity();

    std::vector<bool> owned(geom.blocks(), false);
    const auto claim = [&](flash::BlockId b, std::uint32_t zone) {
        if (b >= geom.blocks()) {
            fail(cat("zone ", zone, ": block ", b, " out of range"));
            return false;
        }
        if (owned[b]) {
            fail(cat("block ", b, " owned twice (zone ", zone, ")"));
            return false;
        }
        owned[b] = true;
        return true;
    };

    std::uint32_t open = 0;
    for (std::uint32_t zone = 0; zone < z.zones(); ++zone) {
        const auto state = z.state(zone);
        const std::uint64_t wp = z.writePointer(zone);
        const std::uint64_t prog = z.programmedPages(zone);
        if (prog > wp)
            fail(cat("zone ", zone, ": programmed ", prog,
                     " beyond write pointer ", wp));
        switch (state) {
          case ftl::zns::ZoneState::Empty:
            if (wp != 0 || prog != 0)
                fail(cat("zone ", zone, ": EMPTY with wp ", wp,
                         " programmed ", prog));
            break;
          case ftl::zns::ZoneState::Open:
            ++open;
            [[fallthrough]];
          case ftl::zns::ZoneState::Closed:
            // Only zoneFinish detaches wp from the programmed count,
            // and it always lands the zone in FULL.
            if (wp != prog || wp >= cap)
                fail(cat("zone ", zone, ": ",
                         ftl::zns::zoneStateName(state), " with wp ",
                         wp, " programmed ", prog, " capacity ", cap));
            break;
          case ftl::zns::ZoneState::Full:
            if (wp != cap)
                fail(cat("zone ", zone, ": FULL with wp ", wp,
                         " != capacity ", cap));
            break;
        }

        for (std::uint32_t idx = 0; idx < bpz; ++idx)
            claim(z.zoneBlock(zone, idx), zone);
        if (z.refreshing(zone))
            continue; // a migration job holds this zone mid-copy
        // The programmed prefix maps exactly onto the zone's blocks:
        // full blocks, then one partial, then erased remainder — and
        // every programmed page is Valid with a whole-page mask (ZNS
        // hosts never write or invalidate sub-page ranges).
        for (std::uint32_t idx = 0; idx < bpz; ++idx) {
            const flash::BlockId b = z.zoneBlock(zone, idx);
            if (b >= geom.blocks())
                continue;
            const auto &blk = chips.block(b);
            const std::uint64_t lo = std::uint64_t{idx} * ppb;
            const std::uint32_t expect = static_cast<std::uint32_t>(
                std::clamp<std::uint64_t>(
                    prog > lo ? prog - lo : 0, 0, ppb));
            if (blk.writePointer() != expect) {
                fail(cat("zone ", zone, " block ", b,
                         ": write pointer ", blk.writePointer(),
                         " != programmed prefix ", expect));
                continue;
            }
            const flash::SectorMask full = blk.fullSectorMask();
            for (std::uint32_t p = 0; p < ppb; ++p) {
                if (p < expect) {
                    if (!blk.isValid(p) || blk.sectorMask(p) != full)
                        fail(cat("zone ", zone, " block ", b, " page ",
                                 p, ": programmed page not fully "
                                 "Valid"));
                } else if (!blk.isFree(p)) {
                    fail(cat("zone ", zone, " block ", b, " page ", p,
                             ": programmed beyond the zone's prefix"));
                }
            }
        }
    }
    if (open != z.openZones())
        fail(cat("openZones ", z.openZones(), " != recount ", open));
    if (open > z.znsConfig().maxOpenZones)
        fail(cat("open zones ", open, " exceed the budget ",
                 z.znsConfig().maxOpenZones));

    for (std::size_t i = 0; i < z.spareBlocks(); ++i) {
        const flash::BlockId b = z.spareBlock(i);
        if (!claim(b, z.zones()))
            continue;
        if (!chips.block(b).isErased())
            fail(cat("spare block ", b, " is not erased"));
    }
}

void
Auditor::checkZnsConservation()
{
    const auto &z = ssd_.backend().zns();
    const auto &cs = ssd_.chips().stats();
    const auto &zs = z.znsStats();

    // Appends and refresh migration are the only timed programs on a
    // ZNS device (preload uses programImmediate, which chips don't
    // count); resets and post-migration cleanup issue every erase.
    const std::uint64_t dPrograms = cs.programs - base_.chipPrograms;
    const std::uint64_t dAppended =
        zs.appendedPages - base_.znsAppendedPages;
    const std::uint64_t dMigrated =
        z.stats().refresh.migratedPages - base_.refreshMigrated;
    if (dPrograms != dAppended + dMigrated)
        fail(cat("programs ", dPrograms, " != appended ", dAppended,
                 " + migrated ", dMigrated));

    const std::uint64_t dErases = cs.erases - base_.chipErases;
    const std::uint64_t dReset = zs.resetErases - base_.znsResetErases;
    const std::uint64_t dRefresh =
        zs.refreshErases - base_.znsRefreshErases;
    if (dErases != dReset + dRefresh)
        fail(cat("erases ", dErases, " != reset ", dReset,
                 " + refresh ", dRefresh));
}

} // namespace ida::audit
