/**
 * @file
 * Cross-layer invariant auditor.
 *
 * The simulator's result tables are only as credible as the agreement
 * between its layers: the FTL mapping, the per-block valid bitmaps, the
 * per-wordline IDA coding state, the event kernel's packed heap, and
 * the conservation counters that tie host traffic to flash commands.
 * Each layer maintains its own view incrementally for speed; nothing on
 * the hot path re-derives another layer's state. The Auditor closes
 * that gap: it walks every layer from the outside and checks that the
 * cached views agree with ground-truth recomputation.
 *
 * Usage: attach an Auditor to a live Ssd, then either call runAll() at
 * points of interest (e.g. after drain), maybeRun(every) from a harness
 * drive loop, or — in IDA_AUDIT builds — arm(every) to have the event
 * kernel invoke it automatically every N executed events. The default
 * check catalog is registered by the constructor; registerCheck() adds
 * custom checks. Violations accumulate and are never cleared by
 * running; a clean system reports zero forever.
 *
 * The auditor is deliberately O(pages) per run and touches no simulator
 * state; it is a debug tool, compiled into the library always but never
 * invoked from any hot path. The *periodic* wiring inside the event
 * kernel exists only under -DIDA_AUDIT=ON (see CMakeLists), so default
 * builds carry zero cost.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ida::ssd {
class Ssd;
}

namespace ida::audit {

/** One recorded invariant violation. */
struct Violation
{
    std::string check;  ///< name of the check that fired
    std::string detail; ///< what disagreed, with indices
};

/**
 * Walks a live Ssd and verifies cross-layer invariants.
 *
 * Checks registered by default (the catalog; docs/ARCHITECTURE.md):
 *  - mapping-block:    L2P/P2L inverse agreement, every live mapping
 *                      points at a Valid flash page, per-block
 *                      validCount matches both the page-state popcount
 *                      and the number of mapped pages in the block.
 *  - wordline-cache:   flash::Block's incrementally maintained
 *                      invalid-level masks match recomputation from the
 *                      page states.
 *  - ida-coding:       every IDA wordline's mask is a proper subset
 *                      with all dropped levels Invalid; the memoized
 *                      IdaMerge moves states only upward (ISPP), its
 *                      survivors are consistent, and surviving levels
 *                      never sense more than the conventional coding.
 *  - event-queue:      packed 4-ary heap order, timestamps never behind
 *                      now(), exact slab-pool slot accounting
 *                      (EventQueue::validateHeap).
 *  - block-accounting: BlockManager free pools / active flags / in-use
 *                      counter agree with per-block recount; no clock
 *                      field is ahead of the event clock.
 *  - sector-validity:  per-page sector masks agree with the page state
 *                      (Valid ⇔ mask non-empty, Free/Invalid ⇒ empty)
 *                      and never carry bits outside the geometry's
 *                      sectors-per-page.
 *  - cache-coherence:  every read-cache line is non-empty, in range,
 *                      consistent with the cache's own index, within
 *                      capacity, and a subset of flash-valid ∪
 *                      write-buffer-dirty sectors (the cache never
 *                      invents data and never outlives a write/TRIM).
 *  - conservation:     host writes + preload + GC/refresh migration +
 *                      write-buffer destages account exactly for every
 *                      flash program, net of read-modify-write merges
 *                      still in flight; erases and write-buffer
 *                      occupancy balance the same way; total valid
 *                      pages equal the mapping's mappedCount.
 *
 * The catalog is backend-parameterized: the checks above that read the
 * page-mapped FTL's structures (mapping-block, block-accounting,
 * cache-coherence, conservation) register only on page-mapped devices.
 * The flash-level checks (wordline-cache, ida-coding, event-queue,
 * sector-validity) are backend-agnostic and always register. ZNS
 * devices additionally get:
 *
 *  - zns-zone-state:   every zone's state/write-pointer/programmed
 *                      triple is internally consistent (EMPTY <=> wp=0,
 *                      FULL <=> wp=capacity, otherwise wp==programmed),
 *                      the programmed count matches the zone's blocks'
 *                      write pointers and Valid-page prefix exactly,
 *                      the OPEN count matches recount and respects the
 *                      open-zone budget, spare-pool blocks are erased,
 *                      and no physical block is owned twice.
 *  - zns-conservation: flash programs equal appended pages plus refresh
 *                      migration; erases equal reset plus refresh
 *                      erases (preload uses untimed programImmediate).
 */
class Auditor
{
  public:
    using CheckFn = std::function<void(Auditor &)>;

    /**
     * Attach to @p ssd, register the default catalog, and snapshot the
     * conservation baselines (so attaching mid-run is valid).
     */
    explicit Auditor(ssd::Ssd &ssd);

    /** Add a custom check; it runs after the defaults, in add order. */
    void registerCheck(std::string name, CheckFn fn);

    /**
     * Run every registered check against the current state; returns
     * the number of violations found by this run.
     */
    std::size_t runAll();

    /**
     * Run the catalog when at least @p every_events events have
     * executed since the last audit; returns true when it ran. The
     * cheap polling form for harness drive loops — works in every
     * build, unlike arm().
     */
    bool maybeRun(std::uint64_t every_events);

    /**
     * IDA_AUDIT builds: install this auditor as the event kernel's
     * audit hook, auto-running every @p every_events executed events.
     * A no-op in default builds (the kernel has no hook point).
     */
    void arm(std::uint64_t every_events);

    /**
     * Re-snapshot the conservation baselines. Call after an external
     * counter reset (Ftl::resetReadClassification); the state checks
     * are unaffected either way.
     */
    void rebase();

    /** Record a violation against the currently running check. */
    void fail(std::string detail);

    /**
     * Stored violations, capped at 100 entries to keep a badly corrupt
     * run readable; totalViolations() keeps the true count.
     */
    const std::vector<Violation> &violations() const {
        return violations_;
    }

    std::uint64_t totalViolations() const { return totalViolations_; }

    /** Number of completed runAll() passes. */
    std::uint64_t runs() const { return runs_; }

    /** One-line status plus the first few violations, for loggers. */
    std::string summary() const;

    ssd::Ssd &ssd() { return ssd_; }

  private:
    struct Baseline
    {
        std::uint64_t chipPrograms = 0;
        std::uint64_t chipErases = 0;
        std::uint64_t hostWrites = 0;
        std::uint64_t hostTrims = 0;
        std::uint64_t preloadWrites = 0;
        std::uint64_t gcMigrated = 0;
        std::uint64_t gcErases = 0;
        std::uint64_t refreshMigrated = 0;
        std::uint64_t refreshExtraWrites = 0;
        std::uint64_t wbBuffered = 0;
        std::uint64_t wbCoalesced = 0;
        std::uint64_t wbFlushes = 0;
        std::uint64_t wbTrimmed = 0;
        std::uint64_t wbSize = 0;
        std::uint32_t rmwInFlight = 0;
        std::uint64_t znsAppendedPages = 0;
        std::uint64_t znsResetErases = 0;
        std::uint64_t znsRefreshErases = 0;
    };

    // The default catalog.
    void checkMappingBlock();
    void checkWordlineCache();
    void checkIdaCoding();
    void checkEventQueue();
    void checkBlockAccounting();
    void checkSectorValidity();
    void checkCacheCoherence();
    void checkConservation();
    void checkZnsZoneState();
    void checkZnsConservation();

    Baseline captureBaseline() const;

    ssd::Ssd &ssd_;
    std::vector<std::pair<std::string, CheckFn>> checks_;
    std::vector<Violation> violations_;
    std::uint64_t totalViolations_ = 0;
    std::uint64_t runs_ = 0;
    std::uint64_t lastAuditExecuted_ = 0;
    Baseline base_;
    const std::string *currentCheck_ = nullptr;
};

} // namespace ida::audit
