#include "ssd/config.hh"

#include "sim/log.hh"

namespace ida::ssd {

flash::CodingScheme
SsdConfig::makeCoding() const
{
    switch (coding) {
      case CodingChoice::Tlc124:
        return flash::CodingScheme::tlc124();
      case CodingChoice::Tlc232:
        return flash::CodingScheme::tlc232();
      case CodingChoice::Mlc12:
        return flash::CodingScheme::mlc12();
      case CodingChoice::Qlc1248:
        return flash::CodingScheme::qlc1248();
    }
    sim::panic("SsdConfig::makeCoding: bad coding choice");
}

std::string
SsdConfig::systemLabel() const
{
    // The ZNS prefix marks the backend; the page-mapped labels are
    // unchanged so archived result JSON stays byte-stable.
    const std::string prefix =
        backend == ftl::BackendKind::Zns ? "ZNS-" : "";
    if (ftl.moveToLsbAlternative)
        return prefix + "Move-to-LSB";
    if (!ftl.enableIda)
        return prefix + "Baseline";
    const int e = static_cast<int>(adjustErrorRate * 100.0 + 0.5);
    return prefix + "IDA-E" + std::to_string(e);
}

void
SsdConfig::validate() const
{
    geometry.validate();
    if (adjustErrorRate < 0.0 || adjustErrorRate > 1.0)
        sim::fatal("SsdConfig: adjustErrorRate must be in [0, 1]");
    if (retrySeverity < 0.0 || retrySeverity > 1.0)
        sim::fatal("SsdConfig: retrySeverity must be in [0, 1]");
    const std::uint32_t bits = [&] {
        switch (coding) {
          case CodingChoice::Tlc124:
          case CodingChoice::Tlc232:
            return 3u;
          case CodingChoice::Mlc12:
            return 2u;
          case CodingChoice::Qlc1248:
            return 4u;
        }
        return 0u;
    }();
    if (bits != geometry.bitsPerCell)
        sim::fatal("SsdConfig: coding scheme bit density (" +
                   std::to_string(bits) + ") != geometry bitsPerCell (" +
                   std::to_string(geometry.bitsPerCell) + ")");
}

SsdConfig
SsdConfig::paperTlc()
{
    SsdConfig cfg;
    cfg.geometry = flash::Geometry{}; // Table II shape, scaled capacity
    cfg.timing = flash::FlashTiming{};
    cfg.coding = CodingChoice::Tlc124;
    cfg.ftl = ftl::FtlConfig{};
    return cfg;
}

SsdConfig
SsdConfig::paperMlc()
{
    SsdConfig cfg = paperTlc();
    cfg.coding = CodingChoice::Mlc12;
    cfg.timing = flash::FlashTiming::mlcDefaults();
    cfg.geometry.bitsPerCell = 2;
    cfg.geometry.pagesPerBlock = 128; // 64 wordlines x 2 bits
    cfg.geometry.blocksPerPlane = 192; // keep capacity comparable
    return cfg;
}

SsdConfig
SsdConfig::qlcDevice()
{
    SsdConfig cfg = paperTlc();
    cfg.coding = CodingChoice::Qlc1248;
    cfg.geometry.bitsPerCell = 4;
    cfg.geometry.pagesPerBlock = 256; // 64 wordlines x 4 bits
    cfg.geometry.blocksPerPlane = 96;
    return cfg;
}

SsdConfig
SsdConfig::tiny()
{
    SsdConfig cfg;
    cfg.geometry.channels = 2;
    cfg.geometry.chipsPerChannel = 1;
    cfg.geometry.diesPerChip = 1;
    cfg.geometry.planesPerDie = 2;
    cfg.geometry.blocksPerPlane = 24;
    cfg.geometry.pagesPerBlock = 24; // 8 wordlines x 3 bits
    cfg.ftl.gcFreeThreshold = 2;
    cfg.ftl.refreshPeriod = 10 * sim::kMin;
    cfg.ftl.refreshCheckInterval = sim::kMin;
    return cfg;
}

SsdConfig
SsdConfig::tinyZns()
{
    SsdConfig cfg = tiny();
    cfg.backend = ftl::BackendKind::Zns;
    cfg.zns.blocksPerZone = 2;
    cfg.zns.maxOpenZones = 4;
    return cfg;
}

} // namespace ida::ssd
