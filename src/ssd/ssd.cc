#include "ssd/ssd.hh"

#include <algorithm>

#include "ecc/retry_model.hh"
#include "sim/log.hh"
#include "trace/recorder.hh"

namespace ida::ssd {

double
SsdStats::readThroughputMBps() const
{
    const sim::Time window = lastCompletion - measureStart;
    if (window <= sim::Time{})
        return 0.0;
    return (static_cast<double>(bytesRead) / (1024.0 * 1024.0)) /
           sim::toSec(window);
}

Ssd::Ssd(const SsdConfig &cfg)
    : cfg_(cfg), coding_(cfg.makeCoding()), rng_(cfg.seed)
{
    cfg_.validate();
    chips_ = std::make_unique<flash::ChipArray>(cfg_.geometry, cfg_.timing,
                                                coding_, events_);
    ecc::EccModel ecc = cfg_.useRberRetry
        ? ecc::EccModel(cfg_.adjustErrorRate, ecc::RberModel(),
                        cfg_.rberDeviceAgePe)
        : ecc::EccModel(cfg_.adjustErrorRate,
                        ecc::RetryModel::lifetimePhase(
                            cfg_.retrySeverity));
    backend_ = std::make_unique<ftl::FtlBackend>(
        cfg_.backend, cfg_.geometry, cfg_.ftl, cfg_.zns, *chips_,
        std::move(ecc), events_, rng_);
}

Ssd::~Ssd() = default;

void
Ssd::preloadSequential(std::uint64_t pages)
{
    if (pages > logicalPages())
        sim::fatal("Ssd::preloadSequential: footprint exceeds logical "
                   "capacity");
    backend_->preload(pages);
}

void
Ssd::start()
{
    backend_->start();
}

void
Ssd::enableTracing(bool retain_spans)
{
    trace::Recorder::Options opts;
    opts.retainSpans = retain_spans;
    tracer_ = std::make_unique<trace::Recorder>(opts);
    chips_->setTracer(tracer_.get());
    backend_->setTracer(tracer_.get());
}

void
Ssd::validateRequest(const HostRequest &req) const
{
    if (req.zoneOp != ftl::zns::ZoneOp::None) {
        if (cfg_.backend != ftl::BackendKind::Zns)
            sim::fatal("Ssd::submit: zone op on a non-ZNS device");
        if (req.isTrim)
            sim::fatal("Ssd::submit: zone op cannot also be a TRIM");
        if (req.zone >= backend_->zns().zones())
            sim::fatal("Ssd::submit: zone index beyond the namespace");
        if (req.zoneOp == ftl::zns::ZoneOp::Append &&
            req.pageCount == 0)
            sim::fatal("Ssd::submit: empty zone append");
        return; // page/sector range fields are ignored for zone ops
    }
    if (req.pageCount == 0)
        sim::fatal("Ssd::submit: empty request");
    if (req.startPage + req.pageCount > backend_->logicalPages())
        sim::fatal("Ssd::submit: request beyond logical capacity");
    if (req.sectorCount != 0) {
        // A sub-page request's sector range must stay inside its page
        // range and touch both the first and the last page, so every
        // page of the request gets a nonempty mask.
        const std::uint64_t spp = cfg_.geometry.sectorsPerPage();
        const std::uint64_t end =
            std::uint64_t{req.startSector} + req.sectorCount;
        if (req.startSector >= spp || end > req.pageCount * spp ||
            end <= (std::uint64_t{req.pageCount} - 1) * spp)
            sim::fatal("Ssd::submit: sector range does not line up with "
                       "the request's page range");
    }
}

std::uint32_t
Ssd::acquireSlot(const HostRequest &req)
{
    std::uint32_t slot;
    if (freeSlot_ != kNilSlot) {
        slot = freeSlot_;
        freeSlot_ = requestSlots_[slot].link;
        requestSlots_[slot].req = req;
    } else {
        slot = static_cast<std::uint32_t>(requestSlots_.size());
        requestSlots_.push_back(RequestSlot{req, 0, sim::Time{}, kNilSlot});
    }
    RequestSlot &rs = requestSlots_[slot];
    rs.pending = 0;
    rs.lastDone = sim::Time{};
    rs.link = kNilSlot;
    return slot;
}

void
Ssd::releaseSlot(std::uint32_t slot)
{
    RequestSlot &rs = requestSlots_[slot];
    rs.req = HostRequest{};
    rs.link = freeSlot_;
    freeSlot_ = slot;
}

// ida-lint: hot-path-root
void
Ssd::submit(const HostRequest &req)
{
    validateRequest(req);
    ++inflightRequests_;
    const std::uint32_t slot = acquireSlot(req);
    events_.schedule(req.arrival, [this, slot] { dispatchSlot(slot); });
}

// ida-lint: hot-path-root
void
Ssd::submitBatch(std::span<const HostRequest> reqs)
{
    std::size_t i = 0;
    while (i < reqs.size()) {
        validateRequest(reqs[i]);
        ++inflightRequests_;
        const sim::Time arrival = reqs[i].arrival;
        const std::uint32_t head = acquireSlot(reqs[i]);
        std::uint32_t tail = head;
        ++i;
        while (i < reqs.size() && reqs[i].arrival == arrival) {
            validateRequest(reqs[i]);
            ++inflightRequests_;
            const std::uint32_t next = acquireSlot(reqs[i]);
            requestSlots_[tail].link = next;
            tail = next;
            ++i;
        }
        if (head == tail)
            events_.schedule(arrival,
                             [this, head] { dispatchSlot(head); });
        else
            events_.schedule(arrival,
                             [this, head] { dispatchRun(head); });
    }
}

void
Ssd::dispatchRun(std::uint32_t head)
{
    // Read each link before dispatching its slot: a slot that completes
    // synchronously is recycled and its link re-aimed at the free list.
    for (std::uint32_t slot = head; slot != kNilSlot;) {
        const std::uint32_t next = requestSlots_[slot].link;
        dispatchSlot(slot);
        slot = next;
    }
}

flash::SectorMask
Ssd::pageMaskOf(std::uint32_t start_sector, std::uint32_t sector_count,
                std::uint32_t i) const
{
    if (sector_count == 0)
        return 0; // whole page
    const std::uint64_t spp = cfg_.geometry.sectorsPerPage();
    const std::uint64_t pageLo = std::uint64_t{i} * spp;
    const std::uint64_t lo =
        std::max<std::uint64_t>(pageLo, start_sector);
    const std::uint64_t hi =
        std::min<std::uint64_t>(pageLo + spp,
                                std::uint64_t{start_sector} +
                                    sector_count);
    const auto n = static_cast<std::uint32_t>(hi - lo);
    const flash::SectorMask run =
        n >= 32 ? ~flash::SectorMask{0}
                : ((flash::SectorMask{1} << n) - 1);
    return run << (lo - pageLo);
}

void
Ssd::dispatchSlot(std::uint32_t slot)
{
    // Copy the fan-out parameters: page completions can re-enter
    // submit() (closed-loop pumps) and grow the slab under any
    // reference held across the loop below.
    const RequestSlot &rs = requestSlots_[slot];
    const bool isRead = rs.req.isRead;
    const flash::Lpn startPage = rs.req.startPage;
    const std::uint32_t pageCount = rs.req.pageCount;
    const std::uint32_t startSector = rs.req.startSector;
    const std::uint32_t sectorCount = rs.req.sectorCount;
    const ftl::zns::ZoneOp zoneOp = rs.req.zoneOp;
    const std::uint32_t zone = rs.req.zone;

    if (zoneOp != ftl::zns::ZoneOp::None) {
        if (zoneOp == ftl::zns::ZoneOp::Append) {
            // A multi-page append fans out like a write: one FTL call
            // per page, completing when the last page lands.
            requestSlots_[slot].pending = pageCount;
            for (std::uint32_t i = 0; i < pageCount; ++i)
                backend_->zoneAppend(
                    zone, ftl::PageDone{[this, slot](sim::Time when) {
                        pageDone(slot, when);
                    }});
            return;
        }
        // Management ops are a single FTL operation; resets complete
        // when their erases land, the rest complete synchronously.
        requestSlots_[slot].pending = 1;
        ftl::PageDone done{[this, slot](sim::Time when) {
            pageDone(slot, when);
        }};
        switch (zoneOp) {
          case ftl::zns::ZoneOp::Reset:
            backend_->zoneReset(zone, std::move(done));
            break;
          case ftl::zns::ZoneOp::Open:
            backend_->zoneOpen(zone, std::move(done));
            break;
          case ftl::zns::ZoneOp::Close:
            backend_->zoneClose(zone, std::move(done));
            break;
          case ftl::zns::ZoneOp::Finish:
            backend_->zoneFinish(zone, std::move(done));
            break;
          default:
            sim::panic("Ssd::dispatchSlot: bad zone op");
        }
        return;
    }

    if (rs.req.isTrim) {
        // TRIMs are absorbed by the mapping layer: all pages deallocate
        // synchronously at dispatch, with no simulated flash command
        // and no response-time sample.
        for (std::uint32_t i = 0; i < pageCount; ++i)
            backend_->hostTrim(startPage + i,
                               pageMaskOf(startSector, sectorCount, i));
        RequestSlot &trimmed = requestSlots_[slot];
        const sim::Time arrival = trimmed.req.arrival;
        // Host-API boundary type: the caller's completion callback is
        // std::function by contract, and this is a move of an existing
        // object, not a fresh type-erasure. ida-lint: allow(IDA010)
        std::function<void(sim::Time)> onComplete =
            std::move(trimmed.req.onComplete);
        releaseSlot(slot);
        --inflightRequests_;
        if (arrival >= stats_.measureStart)
            ++stats_.trimRequests;
        if (onComplete)
            onComplete(events_.now());
        return;
    }

    requestSlots_[slot].pending = pageCount;
    for (std::uint32_t i = 0; i < pageCount; ++i) {
        const flash::Lpn lpn = startPage + i;
        const flash::SectorMask mask =
            pageMaskOf(startSector, sectorCount, i);
        ftl::PageDone done{[this, slot](sim::Time when) {
            pageDone(slot, when);
        }};
        if (isRead)
            backend_->hostRead(lpn, mask, std::move(done));
        else
            backend_->hostWrite(lpn, mask, std::move(done));
    }
}

void
Ssd::pageDone(std::uint32_t slot, sim::Time when)
{
    RequestSlot &rs = requestSlots_[slot];
    rs.lastDone = std::max(rs.lastDone, when);
    if (--rs.pending > 0)
        return;
    // Move the request out and recycle the slot before any callback
    // runs: the completion may submit again and reuse this very slot.
    const HostRequest req = std::move(rs.req);
    const sim::Time lastDone = rs.lastDone;
    releaseSlot(slot);
    --inflightRequests_;
    if (req.onComplete)
        req.onComplete(lastDone);
    if (req.arrival < stats_.measureStart)
        return; // warm-up request
    if (req.zoneOp != ftl::zns::ZoneOp::None &&
        req.zoneOp != ftl::zns::ZoneOp::Append) {
        // Zone management, like TRIM, is metadata work: counted but
        // contributing no read/write response sample.
        ++stats_.zoneMgmtRequests;
        stats_.lastCompletion = std::max(stats_.lastCompletion, lastDone);
        return;
    }
    const double resp = sim::toUsec(lastDone - req.arrival);
    // Appends are whole-page writes whatever isRead says; the sector
    // fields are ignored for zone ops.
    const bool isAppend = req.zoneOp == ftl::zns::ZoneOp::Append;
    const std::uint64_t bytes =
        req.sectorCount != 0 && !isAppend
            ? std::uint64_t{req.sectorCount} *
                  cfg_.geometry.sectorSizeBytes
            : std::uint64_t{req.pageCount} *
                  cfg_.geometry.pageSizeBytes;
    SsdStats &st = stats_;
    st.lastCompletion = std::max(st.lastCompletion, lastDone);
    if (req.isRead && !isAppend) {
        ++st.readRequests;
        st.readResponseUs.add(resp);
        st.readHist.add(resp);
        st.bytesRead += bytes;
    } else {
        ++st.writeRequests;
        st.writeResponseUs.add(resp);
        st.bytesWritten += bytes;
    }
}

bool
Ssd::drained() const
{
    return inflightRequests_ == 0 && chips_->inflight() == 0 &&
           backend_->quiescent();
}

} // namespace ida::ssd
