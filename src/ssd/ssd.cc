#include "ssd/ssd.hh"

#include <algorithm>

#include "ecc/retry_model.hh"
#include "sim/log.hh"
#include "trace/recorder.hh"

namespace ida::ssd {

double
SsdStats::readThroughputMBps() const
{
    const sim::Time window = lastCompletion - measureStart;
    if (window <= sim::Time{})
        return 0.0;
    return (static_cast<double>(bytesRead) / (1024.0 * 1024.0)) /
           sim::toSec(window);
}

Ssd::Ssd(const SsdConfig &cfg)
    : cfg_(cfg), coding_(cfg.makeCoding()), rng_(cfg.seed)
{
    cfg_.validate();
    chips_ = std::make_unique<flash::ChipArray>(cfg_.geometry, cfg_.timing,
                                                coding_, events_);
    ecc::EccModel ecc = cfg_.useRberRetry
        ? ecc::EccModel(cfg_.adjustErrorRate, ecc::RberModel(),
                        cfg_.rberDeviceAgePe)
        : ecc::EccModel(cfg_.adjustErrorRate,
                        ecc::RetryModel::lifetimePhase(
                            cfg_.retrySeverity));
    ftl_ = std::make_unique<ftl::Ftl>(cfg_.geometry, cfg_.ftl, *chips_,
                                      std::move(ecc), events_, rng_);
}

Ssd::~Ssd() = default;

void
Ssd::preloadSequential(std::uint64_t pages)
{
    if (pages > logicalPages())
        sim::fatal("Ssd::preloadSequential: footprint exceeds logical "
                   "capacity");
    for (flash::Lpn lpn = 0; lpn < pages; ++lpn)
        ftl_->preloadWrite(lpn);
    ftl_->finalizePreload();
}

void
Ssd::start()
{
    ftl_->start();
}

void
Ssd::enableTracing(bool retain_spans)
{
    trace::Recorder::Options opts;
    opts.retainSpans = retain_spans;
    tracer_ = std::make_unique<trace::Recorder>(opts);
    chips_->setTracer(tracer_.get());
    ftl_->setTracer(tracer_.get());
}

void
Ssd::submit(const HostRequest &req)
{
    if (req.pageCount == 0)
        sim::fatal("Ssd::submit: empty request");
    if (req.startPage + req.pageCount > logicalPages())
        sim::fatal("Ssd::submit: request beyond logical capacity");
    if (req.sectorCount != 0) {
        // A sub-page request's sector range must stay inside its page
        // range and touch both the first and the last page, so every
        // page of the request gets a nonempty mask.
        const std::uint64_t spp = cfg_.geometry.sectorsPerPage();
        const std::uint64_t end =
            std::uint64_t{req.startSector} + req.sectorCount;
        if (req.startSector >= spp || end > req.pageCount * spp ||
            end <= (std::uint64_t{req.pageCount} - 1) * spp)
            sim::fatal("Ssd::submit: sector range does not line up with "
                       "the request's page range");
    }
    ++inflightRequests_;
    std::uint32_t slot;
    if (freeSubmit_ != kNilSlot) {
        slot = freeSubmit_;
        freeSubmit_ = pendingSubmits_[slot].nextFree;
        pendingSubmits_[slot].req = req;
    } else {
        slot = static_cast<std::uint32_t>(pendingSubmits_.size());
        pendingSubmits_.push_back(PendingSubmit{req, kNilSlot});
    }
    events_.schedule(req.arrival, [this, slot] { dispatchPending(slot); });
}

void
Ssd::dispatchPending(std::uint32_t slot)
{
    // Move the request out and recycle the slot first: dispatch() may
    // complete synchronously-chained completions that submit again.
    const HostRequest req = std::move(pendingSubmits_[slot].req);
    pendingSubmits_[slot].req = HostRequest{};
    pendingSubmits_[slot].nextFree = freeSubmit_;
    freeSubmit_ = slot;
    dispatch(req);
}

flash::SectorMask
Ssd::pageMaskOf(const HostRequest &req, std::uint32_t i) const
{
    if (req.sectorCount == 0)
        return 0; // whole page
    const std::uint64_t spp = cfg_.geometry.sectorsPerPage();
    const std::uint64_t pageLo = std::uint64_t{i} * spp;
    const std::uint64_t lo =
        std::max<std::uint64_t>(pageLo, req.startSector);
    const std::uint64_t hi =
        std::min<std::uint64_t>(pageLo + spp,
                                std::uint64_t{req.startSector} +
                                    req.sectorCount);
    const auto n = static_cast<std::uint32_t>(hi - lo);
    const flash::SectorMask run =
        n >= 32 ? ~flash::SectorMask{0}
                : ((flash::SectorMask{1} << n) - 1);
    return run << (lo - pageLo);
}

void
Ssd::dispatch(const HostRequest &req)
{
    if (req.isTrim) {
        // TRIMs are absorbed by the mapping layer: all pages deallocate
        // synchronously at dispatch, with no simulated flash command
        // and no response-time sample.
        for (std::uint32_t i = 0; i < req.pageCount; ++i)
            ftl_->hostTrim(req.startPage + i, pageMaskOf(req, i));
        --inflightRequests_;
        if (req.arrival >= stats_.measureStart)
            ++stats_.trimRequests;
        if (req.onComplete)
            req.onComplete(events_.now());
        return;
    }
    // Shared completion context for the request's page operations.
    struct Ctx
    {
        Ssd *ssd;
        HostRequest req;
        std::uint32_t pending;
        sim::Time lastDone{};
    };
    auto ctx = std::make_shared<Ctx>();
    ctx->ssd = this;
    ctx->req = req;
    ctx->pending = req.pageCount;

    auto pageDone = [ctx](sim::Time when) {
        ctx->lastDone = std::max(ctx->lastDone, when);
        if (--ctx->pending > 0)
            return;
        Ssd *ssd = ctx->ssd;
        --ssd->inflightRequests_;
        SsdStats &st = ssd->stats_;
        const HostRequest &r = ctx->req;
        if (r.onComplete)
            r.onComplete(ctx->lastDone);
        if (r.arrival < st.measureStart)
            return; // warm-up request
        const double resp = sim::toUsec(ctx->lastDone - r.arrival);
        const std::uint64_t bytes =
            r.sectorCount != 0
                ? std::uint64_t{r.sectorCount} *
                      ssd->cfg_.geometry.sectorSizeBytes
                : std::uint64_t{r.pageCount} *
                      ssd->cfg_.geometry.pageSizeBytes;
        st.lastCompletion = std::max(st.lastCompletion, ctx->lastDone);
        if (r.isRead) {
            ++st.readRequests;
            st.readResponseUs.add(resp);
            st.readHist.add(resp);
            st.bytesRead += bytes;
        } else {
            ++st.writeRequests;
            st.writeResponseUs.add(resp);
            st.bytesWritten += bytes;
        }
    };

    for (std::uint32_t i = 0; i < req.pageCount; ++i) {
        const flash::Lpn lpn = req.startPage + i;
        const flash::SectorMask mask = pageMaskOf(req, i);
        if (req.isRead)
            ftl_->hostRead(lpn, mask, pageDone);
        else
            ftl_->hostWrite(lpn, mask, pageDone);
    }
}

bool
Ssd::drained() const
{
    return inflightRequests_ == 0 && chips_->inflight() == 0 &&
           ftl_->quiescent();
}

} // namespace ida::ssd
