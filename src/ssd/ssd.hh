/**
 * @file
 * The top-level SSD device: owns the event queue, chip array, ECC model
 * and FTL, accepts multi-page host requests, and collects the response
 * time / throughput statistics the paper's figures report.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "ecc/ecc_model.hh"
#include "flash/chip.hh"
#include "ftl/backend.hh"
#include "ftl/ftl.hh"
#include "ftl/zns/zone_types.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "ssd/config.hh"
#include "stats/histogram.hh"
#include "stats/stats.hh"

namespace ida::trace {
class Recorder;
}

namespace ida::ssd {

/**
 * One host I/O request. Page-granular (like the paper's simulator)
 * unless sectorCount narrows it to a sub-page range; TRIMs are pure
 * metadata operations that complete at dispatch.
 */
struct HostRequest
{
    sim::Time arrival{};
    bool isRead = true;
    /** TRIM/deallocate instead of a data transfer (isRead ignored). */
    bool isTrim = false;
    flash::Lpn startPage = 0;
    std::uint32_t pageCount = 1;
    /** First sector touched, relative to startPage's first sector. */
    std::uint32_t startSector = 0;
    /** Sectors touched; 0 = whole pages (the page-granular default). */
    std::uint32_t sectorCount = 0;
    /**
     * Zone operation (ZNS backend only). None = a conventional
     * read/write/trim. Append writes `pageCount` pages at the zone's
     * write pointer (startPage/startSector/sectorCount ignored);
     * Reset/Open/Close/Finish are zone-management ops where only
     * `zone` is consulted.
     */
    ftl::zns::ZoneOp zoneOp = ftl::zns::ZoneOp::None;
    /** Target zone for zoneOp != None. */
    std::uint32_t zone = 0;
    /** Optional notification when the whole request completes. */
    std::function<void(sim::Time)> onComplete;
};

/** Device-level measured statistics. */
struct SsdStats
{
    stats::Summary readResponseUs;   // per *request*, arrival->done
    stats::Summary writeResponseUs;
    stats::Histogram readHist{1.0, 1.25, 96};
    std::uint64_t readRequests = 0;  // measured only
    std::uint64_t writeRequests = 0;
    std::uint64_t trimRequests = 0;  // measured only; no response stats
    /** Zone reset/open/close/finish requests (measured only). */
    std::uint64_t zoneMgmtRequests = 0;
    std::uint64_t bytesRead = 0;     // measured only
    std::uint64_t bytesWritten = 0;
    sim::Time measureStart{};
    sim::Time lastCompletion{};

    /** Measured host-read throughput in MB/s. */
    double readThroughputMBps() const;
};

/**
 * The simulated SSD.
 *
 * Usage: construct, preload the footprint, start(), submit requests
 * (arrival times must be non-decreasing relative to the event clock),
 * then run the event queue.
 */
class Ssd
{
  public:
    explicit Ssd(const SsdConfig &cfg);
    ~Ssd();

    Ssd(const Ssd &) = delete;
    Ssd &operator=(const Ssd &) = delete;

    const SsdConfig &config() const { return cfg_; }
    sim::EventQueue &events() { return events_; }
    const sim::EventQueue &events() const { return events_; }
    flash::ChipArray &chips() { return *chips_; }
    const flash::ChipArray &chips() const { return *chips_; }
    /** The translation layer behind its backend-agnostic facade. */
    ftl::FtlBackend &backend() { return *backend_; }
    const ftl::FtlBackend &backend() const { return *backend_; }
    /** The page-mapped FTL (fatal on a ZNS device). */
    ftl::Ftl &ftl() { return backend_->pageMapped(); }
    const ftl::Ftl &ftl() const { return backend_->pageMapped(); }
    const flash::CodingScheme &coding() const { return coding_; }

    /** Exported logical capacity in pages. */
    std::uint64_t logicalPages() const { return backend_->logicalPages(); }

    /** Instantly install logical pages [0, pages) (no simulated time). */
    void preloadSequential(std::uint64_t pages);

    /** Arm periodic FTL activity (refresh scanning). */
    void start();

    /**
     * Enqueue a host request at its arrival time. Requests arriving
     * before @p measureStart (see setMeasureStart) are executed but not
     * included in the response statistics (warm-up).
     */
    void submit(const HostRequest &req);

    /**
     * Enqueue many host requests in submission order. Consecutive
     * requests sharing one arrival tick are admitted through a single
     * arrival event that dispatches the whole run in order — the event
     * stream the device produces is identical to submitting them one by
     * one (dispatch order is preserved and nothing else observes the
     * arrival events), but a same-tick burst costs one event instead of
     * one per request.
     */
    void submitBatch(std::span<const HostRequest> reqs);

    /** Statistics only count requests arriving at or after this time. */
    void setMeasureStart(sim::Time t) { stats_.measureStart = t; }

    const SsdStats &stats() const { return stats_; }

    /**
     * Create the span recorder and attach it to the chip array and the
     * FTL (idempotent: replaces any previous recorder). Span *stamping*
     * only happens in IDA_TRACE builds (trace::compiledIn()); in
     * default builds the recorder stays empty. @p retain_spans keeps
     * every raw span for chrome-trace export — leave off for long runs.
     */
    void enableTracing(bool retain_spans = false);

    /** The attached recorder, or null when tracing was never enabled. */
    trace::Recorder *tracer() { return tracer_.get(); }
    const trace::Recorder *tracer() const { return tracer_.get(); }

    /** True when no host or internal flash operation is outstanding. */
    bool drained() const;

    /** Host requests submitted but not yet fully completed. */
    std::uint64_t inflightRequests() const { return inflightRequests_; }

  private:
    /**
     * A host request's whole device-side lifetime: submitted and
     * waiting for its arrival tick, then acting as the shared
     * completion context while its page operations are in flight.
     * Slab-pooled so the arrival event and every page-completion
     * callback capture {this, slot} (16 bytes) instead of a full
     * HostRequest — and so requests allocate nothing in the steady
     * state (the seed heap-allocated a shared_ptr context per request).
     * `link` chains a same-tick admission batch while pending, then the
     * free list after completion.
     */
    struct RequestSlot
    {
        HostRequest req;
        std::uint32_t pending = 0;
        sim::Time lastDone{};
        std::uint32_t link = kNilSlot;
    };

    static constexpr std::uint32_t kNilSlot = ~std::uint32_t{0};

    std::uint32_t acquireSlot(const HostRequest &req);
    void releaseSlot(std::uint32_t slot);
    void validateRequest(const HostRequest &req) const;
    void dispatchSlot(std::uint32_t slot);
    void dispatchRun(std::uint32_t head);
    void pageDone(std::uint32_t slot, sim::Time when);

    /**
     * Sector mask of the @p i-th page of a request with the given
     * sector range (0 = whole page). Takes the range by value so the
     * fan-out loop holds no reference into the request slab — page
     * completions may re-enter submit() and grow it.
     */
    flash::SectorMask pageMaskOf(std::uint32_t start_sector,
                                 std::uint32_t sector_count,
                                 std::uint32_t i) const;

    SsdConfig cfg_;
    flash::CodingScheme coding_;
    sim::EventQueue events_;
    sim::Rng rng_;
    std::unique_ptr<flash::ChipArray> chips_;
    std::unique_ptr<ftl::FtlBackend> backend_;
    std::unique_ptr<trace::Recorder> tracer_;
    SsdStats stats_;
    std::vector<RequestSlot> requestSlots_;
    std::uint32_t freeSlot_ = kNilSlot;
    std::uint64_t inflightRequests_ = 0;
};

} // namespace ida::ssd
