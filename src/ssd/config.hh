/**
 * @file
 * Whole-device configuration: geometry, timing, coding scheme, FTL
 * policy, and the stochastic device models. Factory presets mirror the
 * paper's evaluated systems (Table II baseline, IDA-E{0..80}, dTR
 * sweeps, MLC and QLC devices).
 *
 * Scale note: the paper's 512 GB device has 5472 blocks/plane (67M
 * pages); the default here keeps the full channel/chip/die/plane shape
 * and block geometry but scales blocksPerPlane so footprint *ratios*
 * (occupancy, GC pressure, refresh volume) are preserved on a laptop
 * (see DESIGN.md, substitution notes).
 */
#pragma once

#include <cstdint>
#include <string>

#include "flash/coding.hh"
#include "flash/geometry.hh"
#include "flash/timing.hh"
#include "ftl/backend.hh"
#include "ftl/ftl.hh"

namespace ida::ssd {

/** Which preset coding scheme the device uses. */
enum class CodingChoice { Tlc124, Tlc232, Mlc12, Qlc1248 };

/** Complete device configuration. */
struct SsdConfig
{
    flash::Geometry geometry;
    flash::FlashTiming timing;
    CodingChoice coding = CodingChoice::Tlc124;
    ftl::FtlConfig ftl;

    /** Which translation layer the device runs (docs/BACKENDS.md). */
    ftl::BackendKind backend = ftl::BackendKind::PageMapped;

    /** Zone-shape knobs; consulted only when backend == Zns. */
    ftl::zns::ZnsConfig zns;

    /** Voltage-adjust disturbance rate (the paper's E; Fig. 8). */
    double adjustErrorRate = 0.20;

    /**
     * Lifetime phase for the read-retry model: 0 = early life (no
     * retries), 1 = late life (Fig. 11's read-retry regime).
     */
    double retrySeverity = 0.0;

    /**
     * Use the physical RBER retry model instead of the severity ladder:
     * retry rounds then derive from each block's wear + retention age
     * plus this device-wide baseline P/E count (0 keeps the ladder).
     */
    std::uint32_t rberDeviceAgePe = 0;
    bool useRberRetry = false;

    /** Seed for all *device-side* randomness. */
    std::uint64_t seed = 42;

    /** Build the coding scheme selected by `coding`. */
    flash::CodingScheme makeCoding() const;

    /** Human-readable label of the evaluated system (for reports). */
    std::string systemLabel() const;

    /** Sanity-check cross-field consistency (fatal on error). */
    void validate() const;

    /**
     * The paper's baseline TLC SSD (Table II), capacity-scaled.
     * IDA disabled; enable with `cfg.ftl.enableIda = true` plus an
     * `adjustErrorRate` to get IDA-E20 etc.
     */
    static SsdConfig paperTlc();

    /** The paper's MLC device (Sec. V-G; 65/115 us reads). */
    static SsdConfig paperMlc();

    /** A QLC device for the Fig. 6 extension study. */
    static SsdConfig qlcDevice();

    /** A tiny configuration for fast unit tests. */
    static SsdConfig tiny();

    /** The tiny configuration on the ZNS backend (small zones, a
     *  4-zone open budget) for fast zone-state-machine tests. */
    static SsdConfig tinyZns();
};

} // namespace ida::ssd
