/**
 * @file
 * Latency attribution: folds per-IO spans into per-phase latency
 * histograms and exact time totals, answering "where did the IO time
 * go" — queue wait vs. sensing vs. retry re-sensing vs. channel
 * transfer vs. ECC decode vs. cell programming (paper Sec. II-C's
 * breakdown of a read, extended to every command kind).
 *
 * The headline counters prove the paper's sensing reductions directly:
 * `sensingOpsSaved` accumulates, over every read, the difference
 * between the conventional sensing count of the page's level and the
 * count its wordline's (possibly IDA-merged) coding actually needed —
 * the 2->1 / 4->2 / 4->1 drops of Fig. 5 show up as nonzero savings.
 */
#pragma once

#include <array>
#include <cstdint>

#include "stats/histogram.hh"
#include "trace/span.hh"

namespace ida::stats {
class JsonWriter;
}

namespace ida::trace {

/** Attribution phases; index into the per-phase arrays. */
enum Phase : int {
    kQueueWait = 0, ///< issue -> die granted (die queue)
    kSense,         ///< first sensing round (reads)
    kRetrySense,    ///< read-retry re-sensing rounds
    kChannelWait,   ///< waiting for the shared channel
    kTransfer,      ///< page transfer on the channel
    kDieBusy,       ///< program / erase / adjust cell time
    kEcc,           ///< pipelined ECC decode
    kDram,          ///< controller-DRAM serves
    kNumPhases,
};

/** Stable JSON / report key of phase @p p. */
const char *phaseName(int p);

/** Reduced, POD view of one phase (what reports carry around). */
struct PhaseSummary
{
    std::uint64_t count = 0; ///< spans the phase applied to
    double totalUs = 0.0;    ///< exact summed duration
    double meanUs = 0.0;
    double p99Us = 0.0;      ///< approximate (histogram bucket bound)
};

/** Per-kind span counts plus the sensing-reduction counters. */
struct AttributionCounters
{
    std::uint64_t spans = 0;
    std::uint64_t hostReads = 0;
    std::uint64_t hostWrites = 0;
    std::uint64_t wbufReadHits = 0;
    std::uint64_t wbufWrites = 0;
    std::uint64_t cacheReadHits = 0;
    std::uint64_t unmappedReads = 0;
    std::uint64_t internalReads = 0;
    std::uint64_t internalPrograms = 0;
    std::uint64_t erases = 0;
    std::uint64_t adjusts = 0;
    /** Sensing operations actually performed by traced reads. */
    std::uint64_t sensingOps = 0;
    /** Sensings the conventional coding would have needed. */
    std::uint64_t sensingOpsConventional = 0;
    /** Conventional minus actual: the IDA win (Fig. 5 reductions). */
    std::uint64_t sensingOpsSaved = 0;
    /** Read-retry rounds beyond the first across traced reads. */
    std::uint64_t retryRounds = 0;
};

/**
 * Copyable attribution snapshot, safe to embed in RunResult without
 * dragging the histogram state along. `enabled` is false when the
 * instrumentation was not compiled in (IDA_TRACE off) or no recorder
 * was attached — the JSON schema stays identical either way.
 */
struct AttributionSummary
{
    bool enabled = false;
    AttributionCounters counters;
    std::array<PhaseSummary, kNumPhases> phases{};
};

/**
 * The folding accumulator: per-phase histogram + exact tick totals.
 */
class Attribution
{
  public:
    Attribution();

    /** Fold one completed span. */
    void add(const Span &s);

    const AttributionCounters &counters() const { return counters_; }

    /** Exact summed duration of @p phase in ticks. */
    sim::Time phaseTotal(int phase) const { return totals_[phase]; }

    /** Spans phase @p phase applied to. */
    std::uint64_t phaseCount(int phase) const { return counts_[phase]; }

    const stats::Histogram &phaseHistogram(int phase) const {
        return hists_[phase];
    }

    /** Snapshot for reports; @p enabled is passed through verbatim. */
    AttributionSummary summary(bool enabled) const;

  private:
    void fold(int phase, sim::Time dur);

    AttributionCounters counters_;
    std::array<sim::Time, kNumPhases> totals_{};
    std::array<std::uint64_t, kNumPhases> counts_{};
    std::array<stats::Histogram, kNumPhases> hists_;
};

/**
 * Emit @p s as one JSON object value through @p w (the caller supplies
 * the key). Schema-stable: every field is present even when disabled.
 */
void writeAttributionJson(stats::JsonWriter &w, const AttributionSummary &s);

} // namespace ida::trace
