/**
 * @file
 * chrome://tracing (Trace Event Format) exporter for retained spans.
 *
 * Lanes: each die is a thread (tid = die id), each channel a thread
 * (tid = 1000 + channel), and host-visible IOs ride a synthetic "host"
 * lane (tid = 2000) showing end-to-end latency. Open the file in
 * chrome://tracing or https://ui.perfetto.dev to inspect pipelining —
 * e.g. a die's cache-register sense overlapping the previous page's
 * channel transfer, or the shorter sense slabs of IDA-merged reads.
 *
 * Durations/timestamps are microseconds (the format's unit). Output is
 * deterministic: events are emitted in span-record order through the
 * deterministic JsonWriter, which is what makes golden-file
 * byte-comparison possible (tests/test_trace_golden.cc).
 */
#pragma once

#include <ostream>
#include <vector>

#include "flash/geometry.hh"
#include "trace/span.hh"

namespace ida::trace {

/** Write @p spans as one Trace Event Format JSON document. */
void writeChromeTrace(std::ostream &os, const std::vector<Span> &spans,
                      const flash::Geometry &geom);

} // namespace ida::trace
