#include "trace/span.hh"

namespace ida::trace {

const char *
spanKindName(SpanKind k)
{
    switch (k) {
      case SpanKind::None: return "none";
      case SpanKind::HostRead: return "host_read";
      case SpanKind::HostWrite: return "host_write";
      case SpanKind::WbufReadHit: return "wbuf_read_hit";
      case SpanKind::WbufWrite: return "wbuf_write";
      case SpanKind::CacheReadHit: return "cache_read_hit";
      case SpanKind::UnmappedRead: return "unmapped_read";
      case SpanKind::InternalRead: return "internal_read";
      case SpanKind::InternalProgram: return "internal_program";
      case SpanKind::Erase: return "erase";
      case SpanKind::AdjustWl: return "adjust_wl";
    }
    return "unknown";
}

SpanPhases
phasesOf(const Span &s)
{
    SpanPhases p;
    if (s.isInstant()) {
        p.dram = s.complete - s.start;
        return p;
    }
    p.queueWait = s.dieStart - s.start;
    if (s.isRead()) {
        // The die stage holds (1 + retryRounds) equal sensing rounds
        // (flash/chip.cc computes it as latency * rounds, so the split
        // below is exact); attribute the first round to `sense` and the
        // re-sensings to `retrySense`.
        const sim::Time senseTotal = s.senseEnd - s.dieStart;
        const auto rounds = 1 + s.retryRounds;
        p.sense = senseTotal / rounds;
        p.retrySense = senseTotal - p.sense;
        p.channelWait = s.channelStart - s.senseEnd;
        p.transfer = s.channelEnd - s.channelStart;
        p.ecc = s.complete - s.channelEnd;
        return p;
    }
    // Programs: transfer in first, then the cell operation until
    // completion. Erase/adjust are die-only: the instrumentation stamps
    // channelStart == channelEnd == dieStart, so channelWait and
    // transfer collapse to zero and dieBusy covers the whole operation.
    // A suspended program's interruption window also lands in dieBusy
    // (the operation owns the die slot across the suspension).
    p.channelWait = s.channelStart - s.dieStart;
    p.transfer = s.channelEnd - s.channelStart;
    p.dieBusy = s.complete - s.channelEnd;
    return p;
}

} // namespace ida::trace
