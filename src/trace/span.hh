/**
 * @file
 * Per-IO span records for the latency-attribution and tracing layer.
 *
 * A Span is the compact life record of one flash command or one
 * instantly-served host operation: every phase boundary the device
 * model crosses (die-queue grant, sense completion, channel grant,
 * transfer end, final completion) is stamped with the simulated clock.
 * Spans are produced by the instrumentation points in flash::ChipArray
 * and ftl::Ftl (compiled in only under IDA_TRACE; see
 * docs/ARCHITECTURE.md "IO tracing & latency attribution") and consumed
 * by trace::Recorder, which folds them into per-phase histograms and
 * optionally retains them for the chrome://tracing exporter.
 *
 * The stamp layout is chosen so that the phase durations of any span
 * sum *exactly* to its end-to-end latency (complete - start) — the
 * invariant tests/test_trace.cc cross-checks against the completion
 * times the FTL independently reports to the host.
 */
#pragma once

#include <cstdint>

#include "flash/geometry.hh"
#include "sim/time.hh"

namespace ida::trace {

/** What a span describes. None marks an untraced (inactive) slot. */
enum class SpanKind : std::uint8_t {
    None = 0,
    HostRead,        ///< host read served from the flash array
    HostWrite,       ///< host write programmed straight to flash
    WbufReadHit,     ///< host read served from the controller DRAM buffer
    WbufWrite,       ///< host write absorbed by the DRAM write buffer
    CacheReadHit,    ///< host read served from the DRAM read cache
    UnmappedRead,    ///< host read of a never-written page (no flash op)
    InternalRead,    ///< GC / refresh / verification read
    InternalProgram, ///< GC / refresh migration or write-buffer destage
    Erase,           ///< block erase
    AdjustWl,        ///< IDA voltage adjustment of one wordline
};

/** Stable display name (chrome-trace event name, JSON keys). */
const char *spanKindName(SpanKind k);

/** Lane id marking "no die / no channel involved". */
inline constexpr std::uint32_t kNoLane = ~std::uint32_t{0};

/**
 * One IO's phase-boundary stamps.
 *
 * Timestamp meaning by kind (all simulated nanoseconds):
 *  - reads: start (issue) <= dieStart <= senseEnd <= channelStart <=
 *    channelEnd <= complete; sensing occupies [dieStart, senseEnd]
 *    (including retry re-sensings), the transfer
 *    [channelStart, channelEnd], and ECC decode [channelEnd, complete].
 *  - programs: start <= dieStart <= channelStart <= channelEnd <=
 *    complete; the transfer comes first, the cell programming occupies
 *    [channelEnd, complete] (senseEnd == dieStart, unused).
 *  - erase / adjust: die-only, [dieStart, complete].
 *  - instant serves (write-buffer hit, read-cache hit, buffered write,
 *    unmapped read): everything collapses to [start, complete] in
 *    controller DRAM.
 */
struct Span
{
    std::uint64_t id = 0;
    SpanKind kind = SpanKind::None;
    flash::Lpn lpn = flash::kInvalidLpn; ///< host LPN; invalid = internal
    flash::Ppn ppn = flash::kInvalidPpn;
    std::uint32_t die = kNoLane;
    std::uint32_t channel = kNoLane;

    sim::Time start{};        ///< issue time (host arrival tick)
    sim::Time dieStart{};     ///< die granted (queue wait ends)
    sim::Time senseEnd{};     ///< sensing done (reads; else == dieStart)
    sim::Time channelStart{}; ///< channel granted
    sim::Time channelEnd{};   ///< transfer done
    sim::Time complete{};     ///< host-visible completion

    /** Sensings of one round at the wordline's current coding mode. */
    std::uint16_t senses = 0;
    /** Sensings one round would need under the conventional coding. */
    std::uint16_t sensesConventional = 0;
    /** Read-retry re-sensing rounds beyond the first. */
    std::uint8_t retryRounds = 0;

    bool traced() const { return kind != SpanKind::None; }

    bool
    isRead() const
    {
        return kind == SpanKind::HostRead || kind == SpanKind::InternalRead;
    }

    bool
    isInstant() const
    {
        return kind == SpanKind::WbufReadHit || kind == SpanKind::WbufWrite ||
               kind == SpanKind::CacheReadHit ||
               kind == SpanKind::UnmappedRead;
    }
};

/**
 * A span decomposed into additive phase durations.
 *
 * total() == span.complete - span.start holds for every well-formed
 * span by construction; the cross-check test verifies the *stamps*
 * against independently observed completion times.
 */
struct SpanPhases
{
    sim::Time queueWait{};   ///< issue -> die granted
    sim::Time sense{};       ///< first sensing round (reads)
    sim::Time retrySense{};  ///< additional retry rounds (reads)
    sim::Time channelWait{}; ///< waiting for the shared channel
    sim::Time transfer{};    ///< page transfer on the channel
    sim::Time dieBusy{};     ///< program / erase / adjust execution
    sim::Time ecc{};         ///< pipelined ECC decode (reads)
    sim::Time dram{};        ///< controller-DRAM serves (instant spans)

    sim::Time
    total() const
    {
        return queueWait + sense + retrySense + channelWait + transfer +
               dieBusy + ecc + dram;
    }
};

/** Decompose @p s into its phase durations (see SpanPhases). */
SpanPhases phasesOf(const Span &s);

} // namespace ida::trace
