/**
 * @file
 * The per-device span recorder the instrumentation points report to.
 *
 * A Recorder is owned by ssd::Ssd (created by Ssd::enableTracing) and
 * handed to ChipArray and Ftl as a raw pointer. Every completed span is
 * folded into the Attribution accumulator; with `retainSpans` on, the
 * raw spans are additionally kept for the chrome://tracing exporter
 * (trace/chrome_trace.hh).
 *
 * The recorder itself is always compiled (and unit-tested) — only the
 * *stamping* in the flash/FTL hot paths is gated behind the IDA_TRACE
 * compile option, mirroring the IDA_AUDIT pattern: a default build
 * carries a never-written null pointer and nothing else.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "trace/attribution.hh"
#include "trace/span.hh"

namespace ida::trace {

/** True when the IDA_TRACE instrumentation is compiled into this build. */
inline constexpr bool
compiledIn()
{
#ifdef IDA_TRACE
    return true;
#else
    return false;
#endif
}

class Recorder
{
  public:
    struct Options
    {
        /**
         * Keep every raw span (for chrome-trace export). Off by
         * default: long runs fold millions of spans into the fixed-size
         * attribution state without growing memory.
         */
        bool retainSpans = false;
    };

    Recorder() = default;
    explicit Recorder(Options opts) : opts_(opts) {}

    /** Allocate the next span id (1-based; 0 marks "no span"). */
    std::uint64_t nextId() { return ++lastId_; }

    /** Fold (and optionally retain) one completed span. */
    void
    record(const Span &s)
    {
        attribution_.add(s);
        if (opts_.retainSpans)
            spans_.push_back(s);
    }

    /**
     * Record an instantly-served host operation (write-buffer hit,
     * buffered write, unmapped read) as a one-phase DRAM span.
     */
    void
    recordInstant(SpanKind kind, flash::Lpn lpn, sim::Time start,
                  sim::Time complete)
    {
        Span s;
        s.id = nextId();
        s.kind = kind;
        s.lpn = lpn;
        s.start = start;
        s.dieStart = start;
        s.senseEnd = start;
        s.channelStart = start;
        s.channelEnd = start;
        s.complete = complete;
        record(s);
    }

    const Attribution &attribution() const { return attribution_; }

    /** Snapshot for RunResult; enabled iff the stamps could have fired. */
    AttributionSummary summary() const {
        return attribution_.summary(compiledIn());
    }

    /** Retained spans (empty unless Options::retainSpans). */
    const std::vector<Span> &spans() const { return spans_; }

  private:
    Options opts_;
    std::uint64_t lastId_ = 0;
    Attribution attribution_;
    std::vector<Span> spans_;
};

} // namespace ida::trace
