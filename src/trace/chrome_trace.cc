#include "trace/chrome_trace.hh"

#include "stats/json_writer.hh"

namespace ida::trace {

namespace {

constexpr std::uint64_t kChannelTidBase = 1000;
constexpr std::uint64_t kHostTid = 2000;

void
metaEvent(stats::JsonWriter &w, std::uint64_t tid, const std::string &name)
{
    w.beginObject();
    w.field("name", "thread_name");
    w.field("ph", "M");
    w.field("pid", std::uint64_t{0});
    w.field("tid", tid);
    w.key("args");
    w.beginObject();
    w.field("name", name);
    w.endObject();
    w.endObject();
}

void
beginDuration(stats::JsonWriter &w, const char *name, const char *cat,
              std::uint64_t tid, sim::Time start, sim::Time end)
{
    w.beginObject();
    w.field("name", name);
    w.field("cat", cat);
    w.field("ph", "X");
    w.field("pid", std::uint64_t{0});
    w.field("tid", tid);
    w.field("ts", sim::toUsec(start));
    w.field("dur", sim::toUsec(end - start));
    w.key("args");
    w.beginObject();
}

void
spanArgs(stats::JsonWriter &w, const Span &s)
{
    w.field("id", s.id);
    if (s.lpn != flash::kInvalidLpn)
        w.field("lpn", std::uint64_t{s.lpn});
    if (s.ppn != flash::kInvalidPpn)
        w.field("ppn", std::uint64_t{s.ppn});
    if (s.isRead()) {
        w.field("senses", std::uint64_t{s.senses});
        w.field("sensesConventional",
                std::uint64_t{s.sensesConventional});
        w.field("retryRounds", std::uint64_t{s.retryRounds});
    }
}

} // namespace

void
writeChromeTrace(std::ostream &os, const std::vector<Span> &spans,
                 const flash::Geometry &geom)
{
    stats::JsonWriter w(os);
    w.beginObject();
    w.field("displayTimeUnit", "ms");
    w.key("traceEvents");
    w.beginArray();

    metaEvent(w, kHostTid, "host IOs");
    for (std::uint64_t d = 0; d < geom.dies(); ++d) {
        metaEvent(w, d,
                  "die " + std::to_string(d) + " (ch " +
                      std::to_string(geom.channelOfDie(
                          static_cast<flash::DieId>(d))) +
                      ")");
    }
    for (std::uint32_t c = 0; c < geom.channels; ++c)
        metaEvent(w, kChannelTidBase + c, "channel " + std::to_string(c));

    for (const Span &s : spans) {
        if (!s.traced())
            continue;

        // Host lane: the end-to-end interval the host observes.
        const bool host_visible = s.kind == SpanKind::HostRead ||
                                  s.kind == SpanKind::HostWrite ||
                                  s.isInstant();
        if (host_visible) {
            beginDuration(w, spanKindName(s.kind),
                          s.isInstant() ? "dram" : "host", kHostTid,
                          s.start, s.complete);
            spanArgs(w, s);
            w.endObject(); // args
            w.endObject(); // event
        }
        if (s.isInstant())
            continue;

        // Die lane: reads hold the die only for the sensing stage
        // (cache-register pipelining releases it at sense completion);
        // programs/erases/adjusts own it to the end.
        const sim::Time die_end = s.isRead() ? s.senseEnd : s.complete;
        beginDuration(w, s.isRead() ? "sense" : spanKindName(s.kind),
                      "die", s.die, s.dieStart, die_end);
        spanArgs(w, s);
        w.endObject();
        w.endObject();

        // Channel lane: the page transfer (reads out, programs in).
        if (s.channelEnd > s.channelStart) {
            beginDuration(w, "xfer", "channel",
                          kChannelTidBase + s.channel, s.channelStart,
                          s.channelEnd);
            spanArgs(w, s);
            w.endObject();
            w.endObject();
        }
    }

    w.endArray();
    w.endObject();
    os << "\n";
}

} // namespace ida::trace
