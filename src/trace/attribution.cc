#include "trace/attribution.hh"

#include "stats/json_writer.hh"

namespace ida::trace {

const char *
phaseName(int p)
{
    switch (p) {
      case kQueueWait: return "queueWait";
      case kSense: return "sense";
      case kRetrySense: return "retrySense";
      case kChannelWait: return "channelWait";
      case kTransfer: return "transfer";
      case kDieBusy: return "dieBusy";
      case kEcc: return "ecc";
      case kDram: return "dram";
    }
    return "unknown";
}

Attribution::Attribution() = default;

void
Attribution::fold(int phase, sim::Time dur)
{
    totals_[phase] += dur;
    ++counts_[phase];
    hists_[phase].add(sim::toUsec(dur));
}

void
Attribution::add(const Span &s)
{
    ++counters_.spans;
    switch (s.kind) {
      case SpanKind::HostRead: ++counters_.hostReads; break;
      case SpanKind::HostWrite: ++counters_.hostWrites; break;
      case SpanKind::WbufReadHit: ++counters_.wbufReadHits; break;
      case SpanKind::WbufWrite: ++counters_.wbufWrites; break;
      case SpanKind::CacheReadHit: ++counters_.cacheReadHits; break;
      case SpanKind::UnmappedRead: ++counters_.unmappedReads; break;
      case SpanKind::InternalRead: ++counters_.internalReads; break;
      case SpanKind::InternalProgram: ++counters_.internalPrograms; break;
      case SpanKind::Erase: ++counters_.erases; break;
      case SpanKind::AdjustWl: ++counters_.adjusts; break;
      case SpanKind::None: return; // untraced slot; nothing to fold
    }

    const SpanPhases p = phasesOf(s);
    if (s.isInstant()) {
        fold(kDram, p.dram);
        return;
    }
    fold(kQueueWait, p.queueWait);
    if (s.isRead()) {
        const auto rounds = static_cast<std::uint64_t>(1 + s.retryRounds);
        counters_.sensingOps += s.senses * rounds;
        counters_.sensingOpsConventional += s.sensesConventional * rounds;
        counters_.sensingOpsSaved +=
            (s.sensesConventional - s.senses) * rounds;
        counters_.retryRounds += s.retryRounds;
        fold(kSense, p.sense);
        // Only actual retries contribute: folding zeros for the common
        // no-retry case would drown the retry distribution in zeros.
        if (s.retryRounds > 0)
            fold(kRetrySense, p.retrySense);
        fold(kChannelWait, p.channelWait);
        fold(kTransfer, p.transfer);
        fold(kEcc, p.ecc);
        return;
    }
    // Programs use the channel; erase/adjust stamps collapse the
    // channel interval to zero width, so skip their empty transfer.
    if (s.channelEnd > s.channelStart) {
        fold(kChannelWait, p.channelWait);
        fold(kTransfer, p.transfer);
    }
    fold(kDieBusy, p.dieBusy);
}

AttributionSummary
Attribution::summary(bool enabled) const
{
    AttributionSummary s;
    s.enabled = enabled;
    s.counters = counters_;
    for (int p = 0; p < kNumPhases; ++p) {
        PhaseSummary &ps = s.phases[p];
        ps.count = counts_[p];
        ps.totalUs = sim::toUsec(totals_[p]);
        ps.meanUs = counts_[p]
            ? ps.totalUs / static_cast<double>(counts_[p])
            : 0.0;
        ps.p99Us = counts_[p] ? hists_[p].quantile(0.99) : 0.0;
    }
    return s;
}

void
writeAttributionJson(stats::JsonWriter &w, const AttributionSummary &s)
{
    w.beginObject();
    w.field("enabled", s.enabled);
    w.field("spans", s.counters.spans);
    w.key("phases");
    w.beginObject();
    for (int p = 0; p < kNumPhases; ++p) {
        w.key(phaseName(p));
        w.beginObject();
        w.field("count", s.phases[p].count);
        w.field("totalUs", s.phases[p].totalUs);
        w.field("meanUs", s.phases[p].meanUs);
        w.field("p99Us", s.phases[p].p99Us);
        w.endObject();
    }
    w.endObject();
    w.key("ops");
    w.beginObject();
    w.field("hostReads", s.counters.hostReads);
    w.field("hostWrites", s.counters.hostWrites);
    w.field("wbufReadHits", s.counters.wbufReadHits);
    w.field("wbufWrites", s.counters.wbufWrites);
    w.field("cacheReadHits", s.counters.cacheReadHits);
    w.field("unmappedReads", s.counters.unmappedReads);
    w.field("internalReads", s.counters.internalReads);
    w.field("internalPrograms", s.counters.internalPrograms);
    w.field("erases", s.counters.erases);
    w.field("adjusts", s.counters.adjusts);
    w.endObject();
    w.key("sensing");
    w.beginObject();
    w.field("ops", s.counters.sensingOps);
    w.field("opsConventional", s.counters.sensingOpsConventional);
    w.field("sensingOpsSaved", s.counters.sensingOpsSaved);
    w.field("retryRounds", s.counters.retryRounds);
    w.endObject();
    w.endObject();
}

} // namespace ida::trace
