/**
 * @file
 * Minimal streaming JSON emitter for experiment results.
 *
 * The harnesses archive every run as `results/<harness>.json` next to
 * their text tables. The writer produces deterministic output: keys are
 * emitted in call order, doubles use the shortest round-trippable form
 * (std::to_chars), and strings are escaped per RFC 8259 — so two runs
 * that measure identical values produce byte-identical files, which is
 * what makes JSON outputs diffable across `--jobs` levels and machines.
 *
 * No parsing, no DOM: the library only ever *writes* JSON. The inverse
 * escape transform (jsonUnescape) exists so tests can verify the
 * round-trip property without a JSON parser dependency.
 */
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace ida::stats {

/** Escape @p s as the contents of a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

/**
 * Inverse of jsonEscape: decode backslash escapes (including \uXXXX for
 * code points below 0x80; larger ones are passed through escaped during
 * encoding only when below 0x20, so this covers everything jsonEscape
 * emits). Invalid escapes are kept verbatim rather than rejected.
 */
std::string jsonUnescape(const std::string &s);

/** Format @p v as a JSON number: shortest form that round-trips. */
std::string jsonNumber(double v);

/**
 * Structured JSON writer with automatic comma/indent management.
 *
 * Usage:
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.field("name", "proj_1");
 *   w.key("results"); w.beginArray(); ... w.endArray();
 *   w.endObject();
 *
 * Mismatched begin/end or a value without a key inside an object are
 * programming errors and abort (sim::panic semantics, kept local to
 * avoid the dependency).
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, int indent = 2);

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit the key of the next value (objects only). */
    void key(const std::string &k);

    void value(const std::string &v);
    void value(const char *v);
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(bool v);
    void valueNull();

    /** key() + value() in one call. */
    template <typename T>
    void
    field(const std::string &k, const T &v)
    {
        key(k);
        value(v);
    }

    /** True once the root value is complete. */
    bool done() const { return depth_.empty() && rootWritten_; }

  private:
    enum class Ctx { Object, Array };

    void beforeValue();
    void newline();
    void fail(const char *what) const;

    std::ostream &os_;
    int indent_;
    std::vector<Ctx> depth_;
    std::vector<bool> hasEntries_; // per open container
    bool keyPending_ = false;
    bool rootWritten_ = false;
};

} // namespace ida::stats
