/**
 * @file
 * Generic statistics primitives: running summaries and simple rate
 * helpers. Latency distributions use Histogram (histogram.hh).
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

namespace ida::stats {

/** Running sum/count/min/max summary of a scalar sample stream. */
class Summary
{
  public:
    void
    add(double x)
    {
        sum_ += x;
        ++count_;
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void
    merge(const Summary &o)
    {
        sum_ += o.sum_;
        count_ += o.count_;
        min_ = std::min(min_, o.min_);
        max_ = std::max(max_, o.max_);
    }

    void reset() { *this = Summary(); }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace ida::stats
