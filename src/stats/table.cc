#include "stats/table.hh"

#include <algorithm>
#include <cstdio>

#include "sim/log.hh"

namespace ida::stats {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    if (header_.empty())
        sim::fatal("Table: header must not be empty");
}

void
Table::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        sim::fatal("Table: row width does not match header");
    rows_.push_back(std::move(row));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(width[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << ',';
        }
        os << '\n';
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace ida::stats
