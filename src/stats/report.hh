/**
 * @file
 * Structured run reports: serialize experiment measurements as
 * human-readable text or machine-readable CSV key/value records, so
 * harness outputs can be archived and diffed across runs.
 */
#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace ida::stats {

/**
 * An ordered list of named metrics with section headers.
 *
 * Values are stored as strings so integers keep full precision; the
 * numeric adders format with sensible defaults.
 */
class Report
{
  public:
    explicit Report(std::string title);

    /** Start a new section; subsequent metrics attach to it. */
    void section(const std::string &name);

    void add(const std::string &key, const std::string &value);
    void add(const std::string &key, double value, int precision = 2);
    void add(const std::string &key, std::uint64_t value);

    /** Number of metrics added (excluding sections). */
    std::size_t size() const;

    /** Render as indented text. */
    void printText(std::ostream &os) const;

    /** Render as CSV rows: section,key,value. */
    void printCsv(std::ostream &os) const;

    /** Look up a metric's value ("" when absent); for tests. */
    std::string value(const std::string &key) const;

  private:
    struct Entry
    {
        std::string section;
        std::string key;
        std::string value;
    };

    std::string title_;
    std::string currentSection_;
    std::vector<Entry> entries_;
};

} // namespace ida::stats
