#include "stats/json_writer.hh"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "sim/log.hh"

namespace ida::stats {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonUnescape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 >= s.size()) {
            out += s[i];
            continue;
        }
        const char e = s[++i];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            if (i + 4 < s.size()) {
                const unsigned long cp =
                    std::strtoul(s.substr(i + 1, 4).c_str(), nullptr, 16);
                i += 4;
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else {
                    // Outside what jsonEscape emits; keep escaped.
                    out += "\\u" + s.substr(i - 3, 4);
                }
            } else {
                out += "\\u";
            }
            break;
          default:
            out += '\\';
            out += e;
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null"; // JSON has no Inf/NaN
    char buf[64];
    const auto [end, ec] =
        std::to_chars(buf, buf + sizeof(buf), v);
    if (ec != std::errc())
        return "0";
    std::string s(buf, end);
    // `1e+05`-style output is valid JSON, as is `5`; but bare integers
    // that came from doubles keep a trailing ".0" nowhere — to_chars
    // already emits the shortest round-trip form, which is fine.
    return s;
}

JsonWriter::JsonWriter(std::ostream &os, int indent)
    : os_(os), indent_(indent)
{
}

void
JsonWriter::fail(const char *what) const
{
    sim::panic(std::string("JsonWriter misuse: ") + what);
}

void
JsonWriter::newline()
{
    os_ << '\n';
    for (std::size_t i = 0; i < depth_.size() * indent_; ++i)
        os_ << ' ';
}

void
JsonWriter::beforeValue()
{
    if (depth_.empty()) {
        if (rootWritten_)
            fail("second root value");
        return;
    }
    if (depth_.back() == Ctx::Object && !keyPending_)
        fail("value inside object without a key");
    if (depth_.back() == Ctx::Array) {
        if (hasEntries_.back())
            os_ << ',';
        newline();
    }
    keyPending_ = false;
    hasEntries_.back() = true;
}

void
JsonWriter::key(const std::string &k)
{
    if (depth_.empty() || depth_.back() != Ctx::Object)
        fail("key outside an object");
    if (keyPending_)
        fail("two keys in a row");
    if (hasEntries_.back())
        os_ << ',';
    newline();
    os_ << '"' << jsonEscape(k) << "\": ";
    keyPending_ = true;
}

void
JsonWriter::beginObject()
{
    beforeValue();
    os_ << '{';
    depth_.push_back(Ctx::Object);
    hasEntries_.push_back(false);
}

void
JsonWriter::endObject()
{
    if (depth_.empty() || depth_.back() != Ctx::Object || keyPending_)
        fail("endObject");
    const bool had = hasEntries_.back();
    depth_.pop_back();
    hasEntries_.pop_back();
    if (had)
        newline();
    os_ << '}';
    if (depth_.empty()) {
        rootWritten_ = true;
        os_ << '\n';
    } else {
        hasEntries_.back() = true;
    }
}

void
JsonWriter::beginArray()
{
    beforeValue();
    os_ << '[';
    depth_.push_back(Ctx::Array);
    hasEntries_.push_back(false);
}

void
JsonWriter::endArray()
{
    if (depth_.empty() || depth_.back() != Ctx::Array)
        fail("endArray");
    const bool had = hasEntries_.back();
    depth_.pop_back();
    hasEntries_.pop_back();
    if (had)
        newline();
    os_ << ']';
    if (depth_.empty()) {
        rootWritten_ = true;
        os_ << '\n';
    } else {
        hasEntries_.back() = true;
    }
}

void
JsonWriter::value(const std::string &v)
{
    beforeValue();
    os_ << '"' << jsonEscape(v) << '"';
    if (depth_.empty())
        rootWritten_ = true;
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::value(double v)
{
    beforeValue();
    os_ << jsonNumber(v);
    if (depth_.empty())
        rootWritten_ = true;
}

void
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    os_ << v;
    if (depth_.empty())
        rootWritten_ = true;
}

void
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    os_ << v;
    if (depth_.empty())
        rootWritten_ = true;
}

void
JsonWriter::value(bool v)
{
    beforeValue();
    os_ << (v ? "true" : "false");
    if (depth_.empty())
        rootWritten_ = true;
}

void
JsonWriter::valueNull()
{
    beforeValue();
    os_ << "null";
    if (depth_.empty())
        rootWritten_ = true;
}

} // namespace ida::stats
