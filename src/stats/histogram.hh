/**
 * @file
 * Log-bucketed histogram for latency distributions with percentile
 * queries (used for response-time tails in docs/ARTIFACTS.md and tests).
 */
#pragma once

#include <cstdint>
#include <vector>

namespace ida::stats {

/**
 * Histogram over non-negative values with geometrically growing buckets.
 *
 * Bucket b covers [lo * g^b, lo * g^(b+1)); values below @p lo land in
 * bucket 0, values beyond the last bucket in the overflow bucket.
 * Percentiles are approximate (bucket upper bound), which is plenty for
 * latency reporting.
 */
class Histogram
{
  public:
    /**
     * @param lo      upper bound of the first bucket (> 0).
     * @param growth  geometric bucket growth factor (> 1).
     * @param buckets number of buckets before overflow.
     */
    Histogram(double lo = 1.0, double growth = 1.3, int buckets = 96);

    void add(double x);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Samples that arrived NaN or infinite (excluded from sum/mean). */
    std::uint64_t nonFiniteCount() const { return nonFinite_; }

    /** Approximate quantile (0 < q <= 1), e.g. 0.99 for p99. */
    double quantile(double q) const;

    /** Upper bound of bucket @p b. */
    double bucketBound(int b) const;

    const std::vector<std::uint64_t> &buckets() const { return counts_; }

    /**
     * Fold another histogram into this one, bucket by bucket. Both must
     * share the exact bucket layout (lo, growth, bucket count) — a
     * mismatch is a caller bug (sim::fatal). Merging is commutative and
     * associative, so a fleet-wide merge is order-independent.
     */
    void merge(const Histogram &o);

    void reset();

  private:
    int bucketOf(double x) const;

    double lo_;
    double logGrowth_;
    /**
     * Last (value, bucket) pair: simulated latencies are deterministic
     * constants, so consecutive adds usually repeat the same value and
     * the memo skips bucketOf's std::log on the hot attribution path.
     * Pure cache — hit or miss, the bucket chosen is identical.
     */
    double lastX_ = -1.0;
    int lastBucket_ = 0;
    std::vector<std::uint64_t> counts_; // last entry = overflow
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    std::uint64_t nonFinite_ = 0;
};

} // namespace ida::stats
