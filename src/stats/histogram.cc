#include "stats/histogram.hh"

#include <cmath>

#include "sim/log.hh"

namespace ida::stats {

Histogram::Histogram(double lo, double growth, int buckets)
    : lo_(lo), logGrowth_(std::log(growth)),
      counts_(static_cast<std::size_t>(buckets) + 1, 0)
{
    if (lo <= 0.0 || growth <= 1.0 || buckets < 1)
        sim::fatal("Histogram: need lo > 0, growth > 1, buckets >= 1");
}

int
Histogram::bucketOf(double x) const
{
    if (x < lo_)
        return 0;
    const int b = 1 + static_cast<int>(std::log(x / lo_) / logGrowth_);
    const int last = static_cast<int>(counts_.size()) - 1;
    return b > last ? last : b;
}

void
Histogram::add(double x)
{
    if (x < 0.0)
        x = 0.0;
    ++counts_[static_cast<std::size_t>(bucketOf(x))];
    ++count_;
    sum_ += x;
}

double
Histogram::bucketBound(int b) const
{
    return lo_ * std::exp(logGrowth_ * static_cast<double>(b));
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(count_));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        seen += counts_[b];
        if (seen > target || seen == count_)
            return bucketBound(static_cast<int>(b));
    }
    return bucketBound(static_cast<int>(counts_.size()) - 1);
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
}

} // namespace ida::stats
