#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace ida::stats {

Histogram::Histogram(double lo, double growth, int buckets)
    : lo_(lo), logGrowth_(std::log(growth)),
      counts_(static_cast<std::size_t>(buckets) + 1, 0)
{
    if (lo <= 0.0 || growth <= 1.0 || buckets < 1)
        sim::fatal("Histogram: need lo > 0, growth > 1, buckets >= 1");
}

int
Histogram::bucketOf(double x) const
{
    // The negated comparison also routes NaN into bucket 0, keeping the
    // cast below defined for any input.
    if (!(x >= lo_))
        return 0;
    const int last = static_cast<int>(counts_.size()) - 1;
    const double b = 1.0 + std::log(x / lo_) / logGrowth_;
    // +inf (and any huge sample) lands in the overflow bucket without
    // ever reaching an out-of-range float-to-int cast.
    if (!(b < static_cast<double>(last)))
        return last;
    return static_cast<int>(b);
}

void
Histogram::add(double x)
{
    if (std::isnan(x)) {
        ++nonFinite_;
        return;
    }
    if (std::isinf(x) && x > 0.0) {
        // Count the sample in the overflow bucket but keep it out of
        // sum_, which would otherwise poison mean() forever.
        ++nonFinite_;
        ++counts_.back();
        ++count_;
        return;
    }
    if (x < 0.0)
        x = 0.0; // clamps -inf too
    if (x != lastX_) {
        lastX_ = x;
        lastBucket_ = bucketOf(x);
    }
    ++counts_[static_cast<std::size_t>(lastBucket_)];
    ++count_;
    sum_ += x;
}

double
Histogram::bucketBound(int b) const
{
    return lo_ * std::exp(logGrowth_ * static_cast<double>(b));
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    // Nearest-rank: the quantile is sample #ceil(q * n) (1-based) of the
    // sorted data. The old floor/strict-greater form returned the bucket
    // of sample ceil(q*n)+1, so p99 of 100 samples reported the max.
    auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    target = std::min(std::max<std::uint64_t>(target, 1), count_);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        seen += counts_[b];
        if (seen >= target)
            return bucketBound(static_cast<int>(b));
    }
    return bucketBound(static_cast<int>(counts_.size()) - 1);
}

void
Histogram::merge(const Histogram &o)
{
    if (lo_ != o.lo_ || logGrowth_ != o.logGrowth_ ||
        counts_.size() != o.counts_.size())
        sim::fatal("Histogram::merge: bucket layouts differ");
    for (std::size_t b = 0; b < counts_.size(); ++b)
        counts_[b] += o.counts_[b];
    count_ += o.count_;
    sum_ += o.sum_;
    nonFinite_ += o.nonFinite_;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    nonFinite_ = 0;
}

} // namespace ida::stats
