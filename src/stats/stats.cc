// stats.hh is header-only; compiled stand-alone by the library build.
#include "stats/stats.hh"
