/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to emit the
 * paper's tables and figure series as aligned console output (and
 * optionally CSV).
 */
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ida::stats {

/** A simple column-aligned text table builder. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a row; must have as many cells as the header. */
    void addRow(std::vector<std::string> row);

    /** Format a double with @p precision decimals. */
    static std::string num(double v, int precision = 2);

    /** Format a percentage (0.28 -> "28.0%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Render with aligned columns. */
    void print(std::ostream &os) const;

    /** Render as CSV. */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ida::stats
