#include "stats/report.hh"

#include <cstdio>

#include "stats/table.hh"

namespace ida::stats {

Report::Report(std::string title) : title_(std::move(title))
{
}

void
Report::section(const std::string &name)
{
    currentSection_ = name;
}

void
Report::add(const std::string &key, const std::string &value)
{
    entries_.push_back(Entry{currentSection_, key, value});
}

void
Report::add(const std::string &key, double value, int precision)
{
    add(key, Table::num(value, precision));
}

void
Report::add(const std::string &key, std::uint64_t value)
{
    add(key, std::to_string(value));
}

std::size_t
Report::size() const
{
    return entries_.size();
}

void
Report::printText(std::ostream &os) const
{
    os << title_ << '\n';
    std::string last;
    for (const auto &e : entries_) {
        if (e.section != last) {
            last = e.section;
            os << "  [" << e.section << "]\n";
        }
        os << "    " << e.key << ": " << e.value << '\n';
    }
}

void
Report::printCsv(std::ostream &os) const
{
    os << "section,key,value\n";
    for (const auto &e : entries_)
        os << e.section << ',' << e.key << ',' << e.value << '\n';
}

std::string
Report::value(const std::string &key) const
{
    for (const auto &e : entries_) {
        if (e.key == key)
            return e.value;
    }
    return "";
}

} // namespace ida::stats
