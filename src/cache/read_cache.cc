#include "cache/read_cache.hh"

#include "sim/log.hh"

namespace ida::cache {

ReadCache::ReadCache(const ReadCacheConfig &cfg) : cfg_(cfg)
{
    if (cfg_.dramLatency < sim::Time{})
        sim::fatal("ReadCache: dramLatency must be non-negative");
    slots_.reserve(cfg_.capacityPages);
}

void
ReadCache::unlink(std::uint32_t s)
{
    Line &l = slots_[s];
    if (l.prev != kNilLine)
        slots_[l.prev].next = l.next;
    else
        head_ = l.next;
    if (l.next != kNilLine)
        slots_[l.next].prev = l.prev;
    else
        tail_ = l.prev;
}

void
ReadCache::pushFront(std::uint32_t s)
{
    Line &l = slots_[s];
    l.prev = kNilLine;
    l.next = head_;
    if (head_ != kNilLine)
        slots_[head_].prev = s;
    head_ = s;
    if (tail_ == kNilLine)
        tail_ = s;
}

flash::SectorMask
ReadCache::lookup(flash::Lpn lpn)
{
    // Empty covers disabled too: skip the hash probe entirely.
    if (lines_.empty())
        return 0;
    const auto it = lines_.find(lpn);
    if (it == lines_.end())
        return 0;
    const std::uint32_t s = it->second;
    if (s != head_) {
        unlink(s);
        pushFront(s);
    }
    return slots_[s].sectors;
}

flash::SectorMask
ReadCache::peek(flash::Lpn lpn) const
{
    const auto it = lines_.find(lpn);
    return it == lines_.end() ? 0 : slots_[it->second].sectors;
}

void
ReadCache::insert(flash::Lpn lpn, flash::SectorMask sectors)
{
    if (!enabled() || sectors == 0)
        return;
    const auto it = lines_.find(lpn);
    if (it != lines_.end()) {
        const std::uint32_t s = it->second;
        slots_[s].sectors |= sectors;
        if (s != head_) {
            unlink(s);
            pushFront(s);
        }
        return;
    }
    if (lines_.size() >= cfg_.capacityPages) {
        const std::uint32_t victim = tail_;
        lines_.erase(slots_[victim].lpn);
        unlink(victim);
        slots_[victim].next = freeLine_;
        freeLine_ = victim;
        ++stats_.evictions;
    }
    std::uint32_t s;
    if (freeLine_ != kNilLine) {
        s = freeLine_;
        freeLine_ = slots_[s].next;
    } else {
        s = static_cast<std::uint32_t>(slots_.size());
        slots_.push_back(Line{});
    }
    slots_[s].lpn = lpn;
    slots_[s].sectors = sectors;
    pushFront(s);
    lines_.emplace(lpn, s);
    ++stats_.fills;
}

void
ReadCache::invalidate(flash::Lpn lpn, flash::SectorMask sectors)
{
    if (lines_.empty())
        return;
    const auto it = lines_.find(lpn);
    if (it == lines_.end())
        return;
    const std::uint32_t s = it->second;
    slots_[s].sectors &= ~sectors;
    ++stats_.invalidations;
    if (slots_[s].sectors == 0) {
        unlink(s);
        slots_[s].next = freeLine_;
        freeLine_ = s;
        lines_.erase(it);
    }
}

} // namespace ida::cache
