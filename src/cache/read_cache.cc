#include "cache/read_cache.hh"

#include "sim/log.hh"

namespace ida::cache {

ReadCache::ReadCache(const ReadCacheConfig &cfg) : cfg_(cfg)
{
    if (cfg_.dramLatency < sim::Time{})
        sim::fatal("ReadCache: dramLatency must be non-negative");
}

flash::SectorMask
ReadCache::lookup(flash::Lpn lpn)
{
    const auto it = lines_.find(lpn);
    if (it == lines_.end())
        return 0;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->sectors;
}

flash::SectorMask
ReadCache::peek(flash::Lpn lpn) const
{
    const auto it = lines_.find(lpn);
    return it == lines_.end() ? 0 : it->second->sectors;
}

void
ReadCache::insert(flash::Lpn lpn, flash::SectorMask sectors)
{
    if (!enabled() || sectors == 0)
        return;
    const auto it = lines_.find(lpn);
    if (it != lines_.end()) {
        it->second->sectors |= sectors;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (lines_.size() >= cfg_.capacityPages) {
        const Line &victim = lru_.back();
        lines_.erase(victim.lpn);
        lru_.pop_back();
        ++stats_.evictions;
    }
    lru_.push_front(Line{lpn, sectors});
    lines_.emplace(lpn, lru_.begin());
    ++stats_.fills;
}

void
ReadCache::invalidate(flash::Lpn lpn, flash::SectorMask sectors)
{
    const auto it = lines_.find(lpn);
    if (it == lines_.end())
        return;
    it->second->sectors &= ~sectors;
    ++stats_.invalidations;
    if (it->second->sectors == 0) {
        lru_.erase(it->second);
        lines_.erase(it);
    }
}

} // namespace ida::cache
