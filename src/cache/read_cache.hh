/**
 * @file
 * Controller DRAM read/page cache.
 *
 * A realistic SSD controller serves repeated reads from a DRAM page
 * cache in front of the flash array (TrustedSSD's read_buffer /
 * page_cache is the production shape this follows); IDA's residual
 * read-latency benefit must be measured behind one. The cache is
 * read-allocate with LRU replacement, tracks validity per *sector*
 * (flash::SectorMask), and merges partial flash reads into partially
 * cached lines: a read that finds some sectors cached fetches only the
 * missing ones from flash ("hole merging") and the fill ORs into the
 * line.
 *
 * Coherence rules (docs/CACHING.md):
 *  - every host write/TRIM invalidates its sectors before the data
 *    moves, so the cache never holds sectors newer than flash+buffer;
 *  - only sectors readable from flash or dirty in the write buffer are
 *    ever inserted (never zero-fill holes), giving the audited
 *    invariant  cached(lpn) ⊆ flashValid(lpn) ∪ wbufDirty(lpn).
 *
 * Pure bookkeeping plus stats: the owner (Ftl) decides what to read
 * from flash and charges the DRAM latency for hits.
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "flash/geometry.hh"
#include "sim/time.hh"

namespace ida::cache {

/** Read-cache policy knobs. */
struct ReadCacheConfig
{
    /** Capacity in pages; 0 disables the cache entirely. */
    std::uint32_t capacityPages = 0;

    /** DRAM access latency for cache-hit reads. */
    sim::Time dramLatency = 5 * sim::kUsec;
};

/** Accounting for the cache's behaviour. */
struct ReadCacheStats
{
    /** Host reads served entirely from DRAM (cache, or cache+buffer). */
    std::uint64_t hits = 0;
    /** Host reads that needed at least one flash sensing. */
    std::uint64_t misses = 0;
    /** Misses where cached sectors shrank the flash transfer. */
    std::uint64_t mergedFills = 0;
    /** Line insertions (first sectors of an uncached LPN). */
    std::uint64_t fills = 0;
    /** LRU evictions to make room. */
    std::uint64_t evictions = 0;
    /** Lines dropped or shrunk for write/TRIM coherence. */
    std::uint64_t invalidations = 0;
};

/** LRU sector-granular page cache (bookkeeping only; see file header). */
class ReadCache
{
  public:
    explicit ReadCache(const ReadCacheConfig &cfg);

    bool enabled() const { return cfg_.capacityPages > 0; }
    const ReadCacheConfig &config() const { return cfg_; }
    const ReadCacheStats &stats() const { return stats_; }

    std::size_t size() const { return lines_.size(); }

    /**
     * Sectors of @p lpn currently cached (0 when absent); promotes the
     * line to most-recently-used when present.
     */
    flash::SectorMask lookup(flash::Lpn lpn);

    /** lookup without the LRU promotion (audit checks, peeking). */
    flash::SectorMask peek(flash::Lpn lpn) const;

    /**
     * Add @p sectors of @p lpn (read-allocate fill or hole-merge).
     * ORs into an existing line or inserts a new one, evicting the LRU
     * line when at capacity. No-op when disabled or @p sectors is 0.
     */
    void insert(flash::Lpn lpn, flash::SectorMask sectors);

    /**
     * Coherence: drop @p sectors of @p lpn (host write or TRIM of those
     * sectors supersedes the cached copy). Removes the line when its
     * mask empties.
     */
    void invalidate(flash::Lpn lpn, flash::SectorMask sectors);

    /** Classification hooks the owner drives (kept with the stats). */
    void noteHit() { ++stats_.hits; }
    void noteMiss() { ++stats_.misses; }
    void noteMergedFill() { ++stats_.mergedFills; }

    /** Iterate every cached line, MRU first (audit checks). */
    template <typename Fn>
    void
    forEachLine(Fn &&fn) const
    {
        for (std::uint32_t s = head_; s != kNilLine; s = slots_[s].next)
            fn(slots_[s].lpn, slots_[s].sectors);
    }

  private:
    /*
     * The LRU is an index-linked list through a contiguous slot vector
     * (the seed's std::list allocated a node per line and every
     * promotion chased list pointers across the heap — this is on the
     * host-read critical path). Slots recycle through a free list, so
     * the vector stops growing at capacity.
     */
    struct Line
    {
        flash::Lpn lpn;
        flash::SectorMask sectors;
        std::uint32_t prev;
        std::uint32_t next;
    };

    static constexpr std::uint32_t kNilLine = ~std::uint32_t{0};

    void unlink(std::uint32_t s);
    void pushFront(std::uint32_t s);

    ReadCacheConfig cfg_;
    ReadCacheStats stats_;
    std::vector<Line> slots_;
    std::uint32_t head_ = kNilLine; // most recently used
    std::uint32_t tail_ = kNilLine; // eviction victim
    std::uint32_t freeLine_ = kNilLine;
    std::unordered_map<flash::Lpn, std::uint32_t> lines_;
};

} // namespace ida::cache
