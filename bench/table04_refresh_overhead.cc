/**
 * @file
 * Regenerates paper Table IV: per-refresh voltage-adjustment overhead
 * for a 192-page (64-wordline) block under IDA-E20 — valid pages per
 * refreshed block, additional verification reads (~N_target), and
 * additional disturbed write-backs (~0.2 x N_target).
 *
 * Paper shape: ~98-143 valid pages per block, extra reads about half
 * the valid pages, extra writes about a fifth of the extra reads.
 */
#include "bench_util.hh"

int
main()
{
    using namespace ida;
    bench::banner("Table IV - refresh overhead under IDA-E20",
                  "avg 113/192 valid pages; ~58 extra reads; ~11 extra "
                  "writes per refreshed block");

    stats::Table table({"workload", "valid/192 (paper)", "extra reads (paper)",
                        "extra writes (paper)", "refreshes"});

    // Paper Table IV reference rows.
    struct Ref { const char *name; double v, r, w; };
    const Ref refs[] = {
        {"proj_1", 122.88, 60.98, 12.19}, {"proj_2", 122.21, 60.47, 12.09},
        {"proj_3", 128.69, 63.77, 12.75}, {"proj_4", 114.87, 56.41, 11.28},
        {"hm_1", 103.34, 51.24, 10.24},   {"src1_0", 130.26, 64.29, 12.86},
        {"src1_1", 102.14, 50.54, 10.11}, {"src2_0", 116.36, 57.53, 11.51},
        {"stg_1", 142.67, 70.68, 14.13},  {"usr_1", 98.58, 48.61, 9.72},
        {"usr_2", 113.69, 56.39, 11.28},
    };

    for (const auto &preset : workload::paperWorkloads()) {
        const auto r = bench::run(bench::tlcSystem(true, 0.20), preset);
        const auto &st = r.ftl.refresh;
        const double n = st.refreshes ? double(st.refreshes) : 1.0;
        const Ref *ref = nullptr;
        for (const auto &x : refs) {
            if (preset.name == x.name)
                ref = &x;
        }
        auto cell = [](double measured, double paper) {
            return stats::Table::num(measured, 1) + " (" +
                   stats::Table::num(paper, 1) + ")";
        };
        table.addRow({preset.name,
                      cell(double(st.validPages) / n, ref ? ref->v : 0),
                      cell(double(st.extraReads) / n, ref ? ref->r : 0),
                      cell(double(st.extraWrites) / n, ref ? ref->w : 0),
                      std::to_string(st.refreshes)});
        std::fflush(stdout);
    }
    table.print(std::cout);
    return 0;
}
