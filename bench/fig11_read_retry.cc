/**
 * @file
 * Regenerates paper Fig. 11: IDA-E20's benefit in different portions of
 * the SSD lifetime. Early life has no read retries; late life has an
 * LDPC read-retry regime where failed decodes re-sense the page with
 * shifted voltages — so every retry round costs the page's full memory
 * access again and IDA's cheaper sensing pays off more.
 *
 * Paper shape: ~28% improvement early, ~42.3% late.
 */
#include "bench_util.hh"

int
main()
{
    using namespace ida;
    bench::banner("Fig. 11 - IDA-E20 benefit early vs late lifetime "
                  "(read retries)",
                  "early-life 28% -> late-life 42.3% average improvement");

    const struct { const char *label; double severity; } phases[] = {
        {"early (no retry)", 0.0},
        {"mid (50% retry severity)", 0.5},
        {"late (full retry)", 1.0},
    };

    stats::Table table({"workload", "early", "mid", "late"});
    std::vector<double> avg[3];
    for (const auto &preset : workload::paperWorkloads()) {
        std::vector<std::string> row = {preset.name};
        for (int i = 0; i < 3; ++i) {
            ssd::SsdConfig base = bench::tlcSystem(false);
            base.retrySeverity = phases[i].severity;
            ssd::SsdConfig ida = bench::tlcSystem(true, 0.20);
            ida.retrySeverity = phases[i].severity;
            const auto rb = bench::run(base, preset);
            const auto ri = bench::run(ida, preset);
            const double imp = ri.readImprovement(rb);
            avg[i].push_back(imp);
            row.push_back(stats::Table::pct(imp, 1));
        }
        table.addRow(std::move(row));
        std::fflush(stdout);
    }
    table.addRow({"average", stats::Table::pct(bench::mean(avg[0]), 1),
                  stats::Table::pct(bench::mean(avg[1]), 1),
                  stats::Table::pct(bench::mean(avg[2]), 1)});
    table.print(std::cout);
    std::printf("\nexpected shape: late-life improvement exceeds "
                "early-life improvement.\n");

    // Part 2: the physical RBER retry model — retry rounds derive from
    // each block's wear (device baseline + its own erase count), so the
    // "lifetime portion" is an actual P/E figure instead of a ladder.
    std::printf("\n-- physical RBER model: improvement vs device age "
                "(P/E cycles) --\n");
    const std::vector<std::uint32_t> ages = {0, 12'000, 16'000, 20'000};
    std::vector<std::string> header2 = {"workload"};
    for (auto a : ages)
        header2.push_back(std::to_string(a) + " P/E");
    stats::Table t2(header2);
    std::vector<std::vector<double>> imp2(ages.size());
    for (const char *name : {"proj_1", "hm_1", "src2_0"}) {
        const auto &preset = workload::presetByName(name);
        std::vector<std::string> row = {name};
        for (std::size_t i = 0; i < ages.size(); ++i) {
            ssd::SsdConfig base = bench::tlcSystem(false);
            base.useRberRetry = true;
            base.rberDeviceAgePe = ages[i];
            ssd::SsdConfig ida = bench::tlcSystem(true, 0.20);
            ida.useRberRetry = true;
            ida.rberDeviceAgePe = ages[i];
            const auto rb = bench::run(base, preset);
            const auto ri = bench::run(ida, preset);
            imp2[i].push_back(ri.readImprovement(rb));
            row.push_back(stats::Table::pct(imp2[i].back(), 1));
        }
        t2.addRow(std::move(row));
        std::fflush(stdout);
    }
    std::vector<std::string> avg2 = {"average"};
    for (std::size_t i = 0; i < ages.size(); ++i)
        avg2.push_back(stats::Table::pct(bench::mean(imp2[i]), 1));
    t2.addRow(std::move(avg2));
    t2.print(std::cout);
    std::printf("\nexpected shape: the benefit grows as the device "
                "wears into the read-retry regime.\n");
    return 0;
}
