/**
 * @file
 * Regenerates paper Table III: workload characteristics, measured from
 * the synthetic substitutes and compared with the paper's reported
 * values (read request ratio, mean read size, read data ratio, and the
 * fraction of MSB reads whose sibling LSB/CSB is invalid).
 */
#include "bench_util.hh"

#include "workload/synthetic.hh"

int
main()
{
    using namespace ida;
    bench::banner("Table III - workload characteristics "
                  "(measured vs. paper)",
                  "read ratios 56-99%, read sizes 9-60KB, read data "
                  "47-99%, MSB-invalid 20-45%");

    stats::Table table({"workload", "read% (paper)", "readKB (paper)",
                        "readData% (paper)", "MSBinv% (paper)"});

    for (const auto &preset : workload::paperWorkloads()) {
        // Volume/ratio columns come straight from the generator stream.
        workload::SyntheticTrace trace(
            workload::scaled(preset, bench::benchScale()).synth);
        workload::IoRequest r;
        std::uint64_t reads = 0, total = 0;
        double readPages = 0, writePages = 0;
        while (trace.next(r)) {
            ++total;
            if (r.isRead) {
                ++reads;
                readPages += r.pageCount;
            } else {
                writePages += r.pageCount;
            }
        }
        const double readRatio = 100.0 * double(reads) / double(total);
        const double readKb = readPages / double(reads) * 8.0;
        const double readData =
            100.0 * readPages / (readPages + writePages);

        // The MSB-invalid column needs the device state: profile the
        // baseline run's classification counters.
        const auto run = bench::run(bench::tlcSystem(false), preset);
        const auto &rc = run.ftl.readClass;
        const double msbInv = rc.byLevel[2] ? 100.0 *
            double(rc.byLevelLowerInvalid[2]) / double(rc.byLevel[2]) : 0;

        auto cell = [](double measured, double paper) {
            return stats::Table::num(measured, 1) + " (" +
                   stats::Table::num(paper, 1) + ")";
        };
        table.addRow({preset.name,
                      cell(readRatio, preset.paperReadRatioPct),
                      cell(readKb, preset.paperReadSizeKB),
                      cell(readData, preset.paperReadDataPct),
                      cell(msbInv, preset.paperMsbInvalidPct)});
        std::fflush(stdout);
    }
    table.print(std::cout);
    return 0;
}
