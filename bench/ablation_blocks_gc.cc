/**
 * @file
 * Reproduces the paper's Sec. III-C block-usage analysis.
 *
 * Part 1: IDA keeps refresh target blocks alive instead of erasing
 * them, so the number of in-use blocks grows a little (paper: +2-4% of
 * the device).
 *
 * Part 2: on a *shared* device, a write-intensive phase following the
 * read-intensive one sees slightly more GC work when IDA was active,
 * because the extra in-use blocks shrink the free pool — but IDA blocks
 * hold few valid pages, so GREEDY reclaims them cheaply (paper: GC
 * invocations/erases grow by up to ~3%).
 */
#include "bench_util.hh"

#include "ssd/ssd.hh"

namespace {

using namespace ida;

struct TwoPhaseResult
{
    std::uint64_t inUseAfterPhase1 = 0;
    std::uint64_t totalBlocks = 0;
    std::uint64_t gcInvocations = 0; // phase 2 only
    std::uint64_t gcErases = 0;      // phase 2 only
};

/** Feed one synthetic trace into the device, offset to start at @p t0. */
sim::Time
feedAndRun(ssd::Ssd &ssd, const workload::SyntheticConfig &wc,
           std::uint64_t footprint, sim::Time t0)
{
    workload::SyntheticTrace trace(wc);
    workload::IoRequest r;
    sim::Time last = t0;
    while (trace.next(r)) {
        ssd::HostRequest hr;
        hr.arrival = t0 + r.arrival;
        hr.isRead = r.isRead;
        hr.startPage = r.startPage % footprint;
        hr.pageCount = r.pageCount;
        if (hr.startPage + hr.pageCount > footprint)
            hr.startPage = footprint - std::min<std::uint64_t>(
                hr.pageCount, footprint);
        ssd.submit(hr);
        last = std::max(last, hr.arrival);
    }
    ssd.events().runUntil(last);
    const sim::Time limit = ssd.events().now() + sim::kHour;
    while (!ssd.drained() && ssd.events().now() < limit)
        ssd.events().runUntil(ssd.events().now() + sim::kSec);
    return ssd.events().now();
}

TwoPhaseResult
runTwoPhase(bool ida)
{
    ssd::SsdConfig cfg = bench::tlcSystem(ida, 0.20);
    // A smaller device so the write phase actually exhausts free space.
    cfg.geometry.blocksPerPlane = 16; // 196k pages
    cfg.ftl.gcFreeThreshold = 3;
    cfg.ftl.refreshPeriod = 2 * sim::kHour;
    cfg.ftl.refreshCheckInterval = 30 * sim::kSec;
    cfg.ftl.preloadAgeSpread = 10 * sim::kMin;
    ssd::Ssd ssd(cfg);

    const std::uint64_t footprint = 100'000;
    ssd.preloadSequential(footprint);
    ssd.start();

    // Phase 1: read-intensive with periodic refresh (IDA or baseline).
    workload::SyntheticConfig p1;
    p1.footprintPages = footprint;
    p1.readRatio = 0.9;
    p1.readSizePagesMean = 4.0;
    p1.writeSizePagesMean = 1.5;
    p1.writeRegionFraction = 0.4;
    p1.totalRequests = 60'000;
    p1.duration = sim::kHour;
    p1.seed = 77;
    feedAndRun(ssd, p1, footprint, sim::Time{});

    TwoPhaseResult out;
    out.inUseAfterPhase1 = ssd.ftl().blocks().inUseBlocks();
    out.totalBlocks = cfg.geometry.blocks();
    const auto gc1 = ssd.ftl().stats().gc;

    // Phase 2: sustained write pressure. Long enough that GC reaches
    // steady state — the IDA-held blocks are reclaimed early (they hold
    // few valid pages) and the *steady-state* GC rate is what the paper
    // compares.
    workload::SyntheticConfig p2;
    p2.footprintPages = footprint;
    p2.readRatio = 0.1;
    p2.readSizePagesMean = 4.0;
    p2.writeSizePagesMean = 2.0;
    p2.writeRegionFraction = 1.0;
    p2.totalRequests = 250'000;
    p2.duration = 4 * sim::kHour;
    p2.seed = 78;
    feedAndRun(ssd, p2, footprint, ssd.events().now());

    const auto gc2 = ssd.ftl().stats().gc;
    out.gcInvocations = gc2.invocations - gc1.invocations;
    out.gcErases = gc2.erases - gc1.erases;
    return out;
}

} // namespace

int
main()
{
    bench::banner("Sec. III-C - in-use blocks and follow-on GC impact "
                  "of IDA",
                  "in-use blocks +2-4% of device; follow-on GC/erases "
                  "+<=3%");

    // Part 1: in-use block growth across the paper workloads.
    stats::Table table({"workload", "in-use (base)", "in-use (IDA)",
                        "delta (% of device)"});
    std::vector<double> deltas;
    for (const auto &preset : workload::paperWorkloads()) {
        const auto rb = bench::run(bench::tlcSystem(false), preset);
        const auto ri = bench::run(bench::tlcSystem(true, 0.20), preset);
        const double delta =
            100.0 * (double(ri.ftl.maxInUseBlocks) -
                     double(rb.ftl.maxInUseBlocks)) /
            double(rb.totalBlocks);
        deltas.push_back(delta);
        table.addRow({preset.name,
                      std::to_string(rb.ftl.maxInUseBlocks),
                      std::to_string(ri.ftl.maxInUseBlocks),
                      stats::Table::num(delta, 2) + "%"});
        std::fflush(stdout);
    }
    table.addRow({"average", "", "",
                  stats::Table::num(bench::mean(deltas), 2) + "%"});
    table.print(std::cout);

    // Part 2: the two-phase shared-device experiment.
    std::printf("\n-- two-phase: read-intensive (refresh), then "
                "write-intensive (GC) on the same device --\n");
    const auto base = runTwoPhase(false);
    const auto ida = runTwoPhase(true);
    std::printf("in-use blocks after phase 1: baseline %llu, IDA %llu "
                "(+%.2f%% of device)\n",
                (unsigned long long)base.inUseAfterPhase1,
                (unsigned long long)ida.inUseAfterPhase1,
                100.0 * (double(ida.inUseAfterPhase1) -
                         double(base.inUseAfterPhase1)) /
                    double(base.totalBlocks));
    auto pct = [](std::uint64_t b, std::uint64_t i) {
        return b ? 100.0 * (double(i) / double(b) - 1.0) : 0.0;
    };
    std::printf("phase-2 GC invocations: baseline %llu, IDA %llu "
                "(%+.1f%%)\n",
                (unsigned long long)base.gcInvocations,
                (unsigned long long)ida.gcInvocations,
                pct(base.gcInvocations, ida.gcInvocations));
    std::printf("phase-2 block erases:   baseline %llu, IDA %llu "
                "(%+.1f%%)\n",
                (unsigned long long)base.gcErases,
                (unsigned long long)ida.gcErases,
                pct(base.gcErases, ida.gcErases));
    std::printf("\nexpected shape: small in-use growth; small (<= a few "
                "%%) extra GC work in the write phase.\n");
    return 0;
}
