/**
 * @file
 * Regenerates paper Fig. 9: IDA-E20 read response time normalized to the
 * baseline while the per-tier read latency difference dTR sweeps from
 * 30us to 70us (each system is normalized to a baseline with the *same*
 * dTR).
 *
 * Paper shape: benefit grows monotonically with dTR — ~14% at 30us up
 * to ~49% average at 70us (83% for usr_1).
 */
#include "bench_util.hh"

int
main()
{
    using namespace ida;
    bench::banner("Fig. 9 - dTR sensitivity of IDA-E20",
                  "improvement rises with dTR: ~14% @30us ... ~49% @70us");

    const std::vector<int> dtrs = {30, 40, 50, 60, 70};
    std::vector<std::string> header = {"workload"};
    for (int d : dtrs)
        header.push_back("dTR=" + std::to_string(d) + "us");
    stats::Table table(header);

    std::vector<std::vector<double>> normalized(dtrs.size());
    for (const auto &preset : workload::paperWorkloads()) {
        std::vector<std::string> row = {preset.name};
        for (std::size_t i = 0; i < dtrs.size(); ++i) {
            ssd::SsdConfig base = bench::tlcSystem(false);
            base.timing =
                flash::FlashTiming::tlcWithDeltaTr(dtrs[i] * sim::kUsec);
            ssd::SsdConfig ida = bench::tlcSystem(true, 0.20);
            ida.timing = base.timing;
            const auto rb = bench::run(base, preset);
            const auto ri = bench::run(ida, preset);
            const double n = ri.normalizedReadResp(rb);
            normalized[i].push_back(n);
            row.push_back(stats::Table::num(n, 3));
        }
        table.addRow(std::move(row));
        std::fflush(stdout);
    }
    std::vector<std::string> avg = {"average"};
    for (std::size_t i = 0; i < dtrs.size(); ++i)
        avg.push_back(stats::Table::num(bench::mean(normalized[i]), 3));
    table.addRow(std::move(avg));
    table.print(std::cout);

    std::printf("\naverage improvement per dTR:\n");
    for (std::size_t i = 0; i < dtrs.size(); ++i)
        std::printf("  dTR=%2dus  %5.1f%%\n", dtrs[i],
                    100.0 * (1.0 - bench::mean(normalized[i])));
    return 0;
}
