/**
 * @file
 * Fleet shard-scaling benchmark: wall-clock throughput of the sharded
 * multi-device event loop (src/fleet) at --shards 1 / 2 / 8.
 *
 * One fixed 16-device fleet workload (tiny IDA-enabled members, the
 * fleet_demo shape scaled up) is replayed three times with identical
 * configuration except the shard count. By the fleet determinism
 * contract all three legs must produce byte-identical archive JSON —
 * the bench verifies that and aborts on divergence, so a perf run
 * doubles as a determinism check. It also asserts pastSchedules == 0:
 * a leg that clamped a past-time event is not a valid measurement.
 *
 * Emits $IDA_RESULTS_DIR/BENCH_fleet.json with the schema
 *   { "bench": "fleet_throughput", "commit": <IDA_BENCH_COMMIT>,
 *     "fleet_ios_per_sec": N,           // shards=1 leg, the gate rate
 *     "fleet_ios_per_sec_shards2": N, "fleet_ios_per_sec_shards8": N,
 *     "scaling_shards2": N, "scaling_shards8": N,  // wall1 / wallN
 *     "wall_ms": N, "config": { fleet/geometry/coding/build } }
 *
 * The per-leg rates divide by process CPU time, not wall time — wall
 * time on a shared box charges the fleet for every preemption and
 * swings far beyond the regression gate's tolerance (same reasoning
 * as perf_kernel's events_per_sec). CPU time also prices the shard
 * pool honestly: a leg whose workers burn cycles on handoff shows a
 * lower rate. The scaling ratios stay wall-based on purpose — elapsed
 * time is the quantity sharding exists to shrink.
 *
 * The config fingerprint includes host_cores: shard scaling is a
 * property of the host's parallelism, not just the build, and
 * tools/check_bench_json.sh must self-skip the regression comparison
 * when a baseline from a different core count is supplied. On a
 * single-core host the scaling ratios sit at or below 1.0 — the
 * barrier and thread handoff are pure overhead when every shard
 * timeshares one core — so treat scaling numbers as meaningful only
 * when host_cores >= the shard count. See docs/PERF.md.
 */
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "fleet/fleet.hh"
#include "ssd/config.hh"
#include "stats/json_writer.hh"
#include "workload/presets.hh"
#include "workload/batch.hh"

namespace {

/** Per-process CPU seconds (sums all threads; see the file header). */
double
cpuSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           1e-9 * static_cast<double>(ts.tv_nsec);
}

std::uint64_t
envU64(const char *name, std::uint64_t dflt)
{
    if (const char *env = std::getenv(name)) {
        const long long v = std::atoll(env);
        if (v > 0)
            return static_cast<std::uint64_t>(v);
    }
    return dflt;
}

const char *
codingName(ida::ssd::CodingChoice c)
{
    using ida::ssd::CodingChoice;
    switch (c) {
    case CodingChoice::Tlc124:
        return "Tlc124";
    case CodingChoice::Tlc232:
        return "Tlc232";
    case CodingChoice::Mlc12:
        return "Mlc12";
    case CodingChoice::Qlc1248:
        return "Qlc1248";
    }
    return "unknown";
}

/**
 * Everything that makes two BENCH_fleet.json records incomparable:
 * the member device fingerprint (mirroring perf_kernel's), the fleet
 * topology, and the host's core count (scaling ratios from hosts with
 * different parallelism are not the same measurement).
 */
void
writeFingerprint(ida::stats::JsonWriter &w,
                 const ida::fleet::FleetConfig &fc, unsigned host_cores,
                 std::uint64_t requests)
{
    const ida::flash::Geometry &g = fc.device.geometry;
    w.key("config");
    w.beginObject();
    w.key("fleet");
    w.beginObject();
    w.field("devices", std::uint64_t{fc.devices});
    w.field("stripe_pages", fc.stripePages);
    w.field("epoch_us", static_cast<std::uint64_t>(fc.epoch / ida::sim::kUsec));
    w.field("host_cores", std::uint64_t{host_cores});
    // Unlike events_per_sec, the fleet rate is NOT scale-independent:
    // the footprint and simulated duration stay fixed while the request
    // count scales, so preload/refresh overhead amortizes differently.
    // A smoke-scale record must not gate against a full-scale baseline.
    w.field("requests", requests);
    w.endObject();
    w.key("geometry");
    w.beginObject();
    w.field("channels", std::uint64_t{g.channels});
    w.field("chips_per_channel", std::uint64_t{g.chipsPerChannel});
    w.field("dies_per_chip", std::uint64_t{g.diesPerChip});
    w.field("planes_per_die", std::uint64_t{g.planesPerDie});
    w.field("blocks_per_plane", std::uint64_t{g.blocksPerPlane});
    w.field("pages_per_block", std::uint64_t{g.pagesPerBlock});
    w.field("page_size_bytes", std::uint64_t{g.pageSizeBytes});
    w.field("sector_size_bytes", std::uint64_t{g.sectorSizeBytes});
    w.endObject();
    w.field("coding", codingName(fc.device.coding));
    w.field("system", fc.device.systemLabel());
    w.key("build");
    w.beginObject();
    w.field("compiler", __VERSION__);
#ifdef NDEBUG
    w.field("ndebug", true);
#else
    w.field("ndebug", false);
#endif
#ifdef IDA_AUDIT
    w.field("audit", true);
#else
    w.field("audit", false);
#endif
#ifdef IDA_TRACE
    w.field("trace", true);
#else
    w.field("trace", false);
#endif
    w.endObject();
    w.endObject();
}

struct Leg
{
    double iosPerSec = 0.0;
    double wallSeconds = 0.0;
    std::string archive;
};

Leg
runLeg(int shards, std::uint64_t requests)
{
    using namespace ida;

    fleet::FleetConfig fc;
    fc.device = ssd::SsdConfig::tiny();
    fc.device.ftl.enableIda = true;
    fc.device.adjustErrorRate = 0.20;
    fc.devices = 16;
    fc.stripePages = 8;
    fc.shards = shards;
    fc.epoch = 50 * sim::kMsec;
    fc.fleetSeed = 0x1da'f1ee7;

    workload::WorkloadPreset p;
    p.name = "fleet-bench";
    p.synth.footprintPages = std::uint64_t{fc.devices} * 600;
    p.synth.totalRequests = requests;
    p.synth.duration = 30 * sim::kMin;
    p.synth.readRatio = 0.9;
    p.synth.seed = 17;
    p.refreshPeriod = 2 * sim::kMin;
    p.warmupFraction = 0.25;
    p.prewriteFraction = 0.3;

    const double cpu_start = cpuSeconds();
    const fleet::FleetResult res = fleet::runFleetPreset(fc, p);
    if (res.pastSchedules != 0) {
        std::fprintf(stderr,
                     "fleet_throughput: FAIL - shards=%d leg clamped "
                     "%llu past-time events; not a valid measurement\n",
                     shards,
                     static_cast<unsigned long long>(res.pastSchedules));
        std::exit(1);
    }

    Leg leg;
    leg.wallSeconds = res.wallSeconds;
    const double cpu = cpuSeconds() - cpu_start;
    const double ios =
        static_cast<double>(res.measuredReads + res.measuredWrites);
    leg.iosPerSec = cpu > 0.0 ? ios / cpu : 0.0;
    leg.archive = res.toJson(/*include_volatile=*/false);
    std::printf("  ios/sec[shards=%d]: %.0f  (%.0f measured IOs, "
                "%.2fs cpu, %.2fs wall)\n",
                shards, leg.iosPerSec, ios, cpu, res.wallSeconds);
    return leg;
}

} // namespace

int
main()
{
    using namespace ida;

    const std::uint64_t requests =
        envU64("IDA_FLEET_REQUESTS", 60'000);
    const char *commit_env = std::getenv("IDA_BENCH_COMMIT");
    const std::string commit = commit_env ? commit_env : "unknown";
    const unsigned host_cores = std::thread::hardware_concurrency();

    std::printf("fleet_throughput: 16 devices, %llu requests, host has "
                "%u core(s)\n",
                static_cast<unsigned long long>(requests), host_cores);

    const Leg l1 = runLeg(1, requests);
    const Leg l2 = runLeg(2, requests);
    const Leg l8 = runLeg(8, requests);

    // The determinism contract is part of the measurement's validity:
    // a leg that diverged simulated different work, and its wall time
    // is not comparable to the others'.
    if (l1.archive != l2.archive || l1.archive != l8.archive) {
        std::fprintf(stderr,
                     "fleet_throughput: FAIL - archive JSON diverged "
                     "across shard counts (determinism contract "
                     "broken)\n");
        return 1;
    }
    std::printf("  archive JSON byte-identical across shards 1/2/8\n");

    const double scaling2 =
        l2.wallSeconds > 0.0 ? l1.wallSeconds / l2.wallSeconds : 0.0;
    const double scaling8 =
        l8.wallSeconds > 0.0 ? l1.wallSeconds / l8.wallSeconds : 0.0;
    const double wall_ms =
        1000.0 * (l1.wallSeconds + l2.wallSeconds + l8.wallSeconds);
    std::printf("  scaling: x%.2f at 2 shards, x%.2f at 8 shards "
                "(wall %.2fs -> %.2fs -> %.2fs)\n",
                scaling2, scaling8, l1.wallSeconds, l2.wallSeconds,
                l8.wallSeconds);

    fleet::FleetConfig fingerprint_cfg;
    fingerprint_cfg.device = ssd::SsdConfig::tiny();
    fingerprint_cfg.device.ftl.enableIda = true;
    fingerprint_cfg.device.adjustErrorRate = 0.20;
    fingerprint_cfg.devices = 16;
    fingerprint_cfg.stripePages = 8;
    fingerprint_cfg.epoch = 50 * sim::kMsec;

    const std::string path = workload::resultsDir() + "/BENCH_fleet.json";
    {
        const std::filesystem::path fp(path);
        std::error_code ec;
        if (fp.has_parent_path())
            std::filesystem::create_directories(fp.parent_path(), ec);
        std::ofstream os(fp);
        if (!os) {
            std::fprintf(stderr, "fleet_throughput: cannot write %s\n",
                         path.c_str());
            return 1;
        }
        stats::JsonWriter w(os);
        w.beginObject();
        w.field("bench", "fleet_throughput");
        w.field("commit", commit);
        w.field("fleet_ios_per_sec", l1.iosPerSec);
        w.field("fleet_ios_per_sec_shards2", l2.iosPerSec);
        w.field("fleet_ios_per_sec_shards8", l8.iosPerSec);
        w.field("scaling_shards2", scaling2);
        w.field("scaling_shards8", scaling8);
        w.field("wall_ms", wall_ms);
        writeFingerprint(w, fingerprint_cfg, host_cores, requests);
        w.endObject();
        os << "\n";
    }
    std::printf("json: %s\n", path.c_str());
    return 0;
}
