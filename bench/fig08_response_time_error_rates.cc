/**
 * @file
 * Regenerates paper Fig. 8: read response times of IDA coding with
 * voltage-adjustment error rates E0..E80, normalized to the baseline,
 * over the 11 read-intensive workloads.
 *
 * Paper shape: IDA-E0 ~31% average improvement, IDA-E20 ~28%, benefits
 * decay monotonically with the error rate, IDA-E50 ~20%, IDA-E80 <7%.
 *
 * The 11 x 7 (workload x system) matrix runs through
 * workload::runMatrix; pass --jobs N to parallelize.
 */
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace ida;
    bench::banner("Fig. 8 - normalized read response time vs. "
                  "voltage-adjustment error rate",
                  "IDA-E0 31% avg, E20 28%, E50 20.2%, E80 <7%; "
                  "monotone decay in E");

    const std::vector<double> rates = {0.0, 0.2, 0.4, 0.5, 0.6, 0.8};
    const auto &presets = workload::paperWorkloads();
    const std::size_t stride = 1 + rates.size(); // baseline + E-sweep

    std::vector<workload::RunSpec> specs;
    for (const auto &preset : presets) {
        specs.push_back(bench::spec(bench::tlcSystem(false), preset,
                                    preset.name + "/Baseline"));
        for (double e : rates) {
            const int pct = int(e * 100 + 0.5);
            specs.push_back(bench::spec(
                bench::tlcSystem(true, e), preset,
                preset.name + "/IDA-E" + std::to_string(pct)));
        }
    }
    const auto out =
        bench::runMatrixOrDie(specs, bench::batchOptions(argc, argv));

    std::vector<std::string> header = {"workload", "baseline(us)"};
    for (double e : rates)
        header.push_back("E" + std::to_string(int(e * 100 + 0.5)));
    stats::Table table(header);

    std::vector<std::vector<double>> normalized(rates.size());
    for (std::size_t p = 0; p < presets.size(); ++p) {
        const auto &base = out.results[p * stride];
        std::vector<std::string> row = {presets[p].name,
                                        stats::Table::num(base.readRespUs,
                                                          1)};
        for (std::size_t i = 0; i < rates.size(); ++i) {
            const auto &r = out.results[p * stride + 1 + i];
            const double n = r.normalizedReadResp(base);
            normalized[i].push_back(n);
            row.push_back(stats::Table::num(n, 3));
        }
        table.addRow(std::move(row));
    }

    std::vector<std::string> avg = {"average", ""};
    for (std::size_t i = 0; i < rates.size(); ++i)
        avg.push_back(stats::Table::num(bench::mean(normalized[i]), 3));
    table.addRow(std::move(avg));
    table.print(std::cout);

    std::printf("\nimprovement (1 - normalized), average:\n");
    for (std::size_t i = 0; i < rates.size(); ++i) {
        std::printf("  IDA-E%-3d %5.1f%%\n", int(rates[i] * 100 + 0.5),
                    100.0 * (1.0 - bench::mean(normalized[i])));
    }
    bench::exportJson("fig08_response_time_error_rates", specs, out);
    return 0;
}
