/**
 * @file
 * Regenerates paper Fig. 8: read response times of IDA coding with
 * voltage-adjustment error rates E0..E80, normalized to the baseline,
 * over the 11 read-intensive workloads.
 *
 * Paper shape: IDA-E0 ~31% average improvement, IDA-E20 ~28%, benefits
 * decay monotonically with the error rate, IDA-E50 ~20%, IDA-E80 <7%.
 */
#include "bench_util.hh"

int
main()
{
    using namespace ida;
    bench::banner("Fig. 8 - normalized read response time vs. "
                  "voltage-adjustment error rate",
                  "IDA-E0 31% avg, E20 28%, E50 20.2%, E80 <7%; "
                  "monotone decay in E");

    const std::vector<double> rates = {0.0, 0.2, 0.4, 0.5, 0.6, 0.8};
    std::vector<std::string> header = {"workload", "baseline(us)"};
    for (double e : rates)
        header.push_back("E" + std::to_string(int(e * 100 + 0.5)));
    stats::Table table(header);

    std::vector<std::vector<double>> normalized(rates.size());
    for (const auto &preset : workload::paperWorkloads()) {
        const auto base = bench::run(bench::tlcSystem(false), preset);
        std::vector<std::string> row = {preset.name,
                                        stats::Table::num(base.readRespUs,
                                                          1)};
        for (std::size_t i = 0; i < rates.size(); ++i) {
            const auto r =
                bench::run(bench::tlcSystem(true, rates[i]), preset);
            const double n = r.normalizedReadResp(base);
            normalized[i].push_back(n);
            row.push_back(stats::Table::num(n, 3));
        }
        table.addRow(std::move(row));
        std::fflush(stdout);
    }

    std::vector<std::string> avg = {"average", ""};
    for (std::size_t i = 0; i < rates.size(); ++i)
        avg.push_back(stats::Table::num(bench::mean(normalized[i]), 3));
    table.addRow(std::move(avg));
    table.print(std::cout);

    std::printf("\nimprovement (1 - normalized), average:\n");
    for (std::size_t i = 0; i < rates.size(); ++i) {
        std::printf("  IDA-E%-3d %5.1f%%\n", int(rates[i] * 100 + 0.5),
                    100.0 * (1.0 - bench::mean(normalized[i])));
    }
    return 0;
}
