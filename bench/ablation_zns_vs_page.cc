/**
 * @file
 * Invalidation-regime ablation: how much of IDA's sensing reduction
 * survives when invalidation comes from whole-zone resets (ZNS)
 * instead of page-granular host overwrites (docs/BACKENDS.md)?
 *
 * The paper's IDA win depends on *partially-invalid wordlines*: a TLC
 * wordline whose lower page(s) were invalidated by an overwrite can be
 * re-coded at refresh time to fewer program levels, cutting read
 * sensing 2->1 / 4->2 / 4->1. Page-granular updates produce exactly
 * that state. A host-managed ZNS device never does: data dies a whole
 * zone at a time (reset), so every wordline is either fully live or
 * fully erased and the IDA-eligible population is zero by construction.
 *
 * Four legs on the same TLC geometry, all closed-loop at the same
 * queue depth:
 *
 *   page/Baseline, page/IDA-E20 : page-mapped backend, fig10-mix
 *       overwrite churn (runMatrix cells, tag-seeded).
 *   zns/Baseline,  zns/IDA-E20  : ZNS backend, the log-structured
 *       zone-append/reset host of workload::runZnsWorkload.
 *
 * Expected shape: the page legs report nonzero ida_eligible_wl,
 * ida_served and sensing_saved (and a read-latency improvement); the
 * ZNS legs report zeros — enabling IDA buys nothing under whole-zone
 * resets. That asymmetry is the ablation's headline number.
 */
#include "bench_util.hh"
#include "workload/zns_workload.hh"

namespace {

/** The paper's TLC device on the ZNS backend (default zone shape). */
ida::ssd::SsdConfig
znsSystem(bool enable_ida)
{
    ida::ssd::SsdConfig cfg = ida::bench::tlcSystem(enable_ida, 0.20);
    cfg.backend = ida::ftl::BackendKind::Zns;
    // Two-block zones: small enough that the host's append stream
    // cycles whole zones (fill -> full -> reset) within a bench-scale
    // run, which is the invalidation behavior under study.
    cfg.zns.blocksPerZone = 2;
    return cfg;
}

double
sensingSavedFraction(const ida::workload::RunResult &r)
{
    const double conv =
        static_cast<double>(r.chip.sensingOpsConventional);
    return conv > 0.0
               ? static_cast<double>(r.chip.sensingOpsSaved) / conv
               : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ida;
    bench::banner("Ablation - IDA under page-granular vs ZNS zone-reset "
                  "invalidation",
                  "IDA needs partially-invalid wordlines; whole-zone "
                  "resets never create them, so the benefit collapses "
                  "to zero on ZNS");

    constexpr int kQueueDepth = 16;
    const workload::WorkloadPreset mix =
        workload::presetByName("fig10-mix");

    // Page-mapped legs: overwrite churn through the matrix runner.
    std::vector<workload::RunSpec> pageSpecs;
    pageSpecs.push_back(bench::closedLoopSpec(
        bench::tlcSystem(false), mix, "page/Baseline", kQueueDepth));
    pageSpecs.push_back(bench::closedLoopSpec(
        bench::tlcSystem(true, 0.20), mix, "page/IDA-E20", kQueueDepth));
    const auto pageOut =
        bench::runMatrixOrDie(pageSpecs, bench::batchOptions(argc, argv));

    // ZNS legs: the zone-append/reset host, request count at the same
    // bench scale as the page trace.
    workload::ZnsWorkloadConfig wl;
    wl.totalRequests = static_cast<std::uint64_t>(
        20'000 * bench::benchScale());
    wl.queueDepth = kQueueDepth;
    // Run the device nearly full (the runner clamps to capacity minus
    // the active-zone headroom): every new zone the log-structured
    // host acquires must first *reset* an old one, which is the
    // whole-zone invalidation regime this ablation is about. A
    // write-heavier mix than the page legs' trace keeps zones cycling
    // within the run (reads still dominate the latency measurement).
    wl.utilizationTarget = 1.0;
    wl.readFraction = 0.6;
    std::vector<workload::RunResult> znsResults;
    for (const bool ida : {false, true}) {
        const std::string tag =
            std::string("zns/") + (ida ? "IDA-E20" : "Baseline");
        znsResults.push_back(
            workload::runZnsWorkload(znsSystem(ida), wl, tag));
        std::fprintf(stderr, "%-32s %10.3f\n", tag.c_str(),
                     znsResults.back().wallSeconds);
    }

    const workload::RunResult &pb = pageOut.results[0];
    const workload::RunResult &pi = pageOut.results[1];
    const workload::RunResult &zb = znsResults[0];
    const workload::RunResult &zi = znsResults[1];

    stats::Table t({"invalidation", "system", "read_mean_us",
                    "sensing_saved", "ida_served", "ida_eligible_wl",
                    "ida_benefit"});
    const auto row = [&](const char *regime,
                         const workload::RunResult &r,
                         const workload::RunResult *base) {
        t.addRow({regime, base ? "IDA-E20" : "Baseline",
                  stats::Table::num(r.readRespUs, 1),
                  stats::Table::pct(sensingSavedFraction(r), 2),
                  std::to_string(r.ftl.readClass.idaServed),
                  std::to_string(r.idaEligibleWordlines),
                  base ? stats::Table::pct(r.readImprovement(*base), 1)
                       : "-"});
    };
    row("page-overwrite", pb, nullptr);
    row("page-overwrite", pi, &pb);
    row("zone-reset", zb, nullptr);
    row("zone-reset", zi, &zb);
    t.print(std::cout);

    std::printf("\nzns leg detail: appends=%llu resets=%llu "
                "reset_pages=%llu refresh_migrated=%llu\n",
                static_cast<unsigned long long>(zi.zns.appendedPages),
                static_cast<unsigned long long>(zi.zns.resets),
                static_cast<unsigned long long>(zi.zns.resetPages),
                static_cast<unsigned long long>(
                    zi.ftl.refresh.migratedPages));
    std::printf("\nexpected shape: page-overwrite shows nonzero "
                "sensing_saved / ida_served / ida_eligible_wl and a "
                "positive ida_benefit; zone-reset shows zeros for all "
                "three — whole-zone invalidation leaves IDA nothing to "
                "merge.\n");

    // One combined archive: the page cells plus the zns cells, in leg
    // order, through the standard exporter (zns specs carry the tag
    // and device only; there is no preset to record).
    std::vector<workload::RunSpec> specs = pageSpecs;
    workload::BatchOutcome out = pageOut;
    for (const bool ida : {false, true}) {
        workload::RunSpec s;
        s.device = znsSystem(ida);
        s.tag = std::string("zns/") + (ida ? "IDA-E20" : "Baseline");
        specs.push_back(s);
    }
    out.results.push_back(zb);
    out.results.push_back(zi);
    out.errors.emplace_back();
    out.errors.emplace_back();
    bench::exportJson("ablation_zns_vs_page", specs, out);
    return 0;
}
