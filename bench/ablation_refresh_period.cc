/**
 * @file
 * Design-space sweep over the refresh period (the paper fixes 3 days ..
 * 3 months per workload and explicitly does *not* shorten it).
 *
 * Short periods re-refresh constantly: every IDA block is reclaimed and
 * re-coded each cycle (50% duty) and the adjustment traffic interferes.
 * Long periods refresh once and the IDA state persists. This harness
 * sweeps the period as a multiple of the trace duration to show that
 * IDA does not depend on an artificially shortened refresh period — the
 * paper's critical point in Sec. III-C.
 *
 * The 3 x 5 x 2 (workload x period x system) matrix runs through
 * workload::runMatrix; pass --jobs N to parallelize.
 */
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace ida;
    bench::banner("Design sweep - refresh period vs IDA benefit",
                  "the paper keeps refresh periods long; benefit must "
                  "not rely on shortening them");

    const std::vector<double> multiples = {0.25, 0.5, 1.0, 2.0, 4.0};
    // Three representative workloads keep the sweep fast.
    const std::vector<std::string> names = {"proj_1", "hm_1", "usr_2"};

    std::vector<workload::RunSpec> specs;
    for (const auto &name : names) {
        for (double m : multiples) {
            workload::WorkloadPreset p = workload::presetByName(name);
            p.refreshPeriod = p.synth.duration * m;
            const std::string suffix =
                "/p" + stats::Table::num(m, 2) + "x";
            specs.push_back(bench::spec(bench::tlcSystem(false), p,
                                        name + suffix + "/Baseline"));
            specs.push_back(bench::spec(bench::tlcSystem(true, 0.20), p,
                                        name + suffix + "/IDA-E20"));
        }
    }
    const auto out =
        bench::runMatrixOrDie(specs, bench::batchOptions(argc, argv));

    std::vector<std::string> header = {"workload"};
    for (double m : multiples)
        header.push_back("period=" + stats::Table::num(m, 2) + "x");
    stats::Table table(header);

    std::vector<std::vector<double>> imps(multiples.size());
    std::size_t idx = 0;
    for (const auto &name : names) {
        std::vector<std::string> row = {name};
        for (std::size_t i = 0; i < multiples.size(); ++i) {
            const auto &rb = out.results[idx++];
            const auto &ri = out.results[idx++];
            const double imp = ri.readImprovement(rb);
            imps[i].push_back(imp);
            row.push_back(stats::Table::pct(imp, 1));
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> avg = {"average"};
    for (std::size_t i = 0; i < multiples.size(); ++i)
        avg.push_back(stats::Table::pct(bench::mean(imps[i]), 1));
    table.addRow(std::move(avg));
    table.print(std::cout);
    std::printf("\nexpected shape: the benefit holds across periods "
                "(longer periods keep IDA blocks resident; shorter ones "
                "re-code more often but pay more refresh overhead).\n");
    bench::exportJson("ablation_refresh_period", specs, out);
    return 0;
}
