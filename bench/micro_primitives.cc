/**
 * @file
 * google-benchmark microbenchmarks of the simulator's core primitives:
 * IDA merge computation, sensing-count queries, event-queue throughput,
 * mapping-table churn, and synthetic trace generation.
 */
#include <benchmark/benchmark.h>

#include "flash/coding.hh"
#include "ftl/mapping.hh"
#include "sim/event_queue.hh"
#include "workload/synthetic.hh"

namespace {

using namespace ida;

void
BM_IdaMergeComputeTlc(benchmark::State &state)
{
    for (auto _ : state) {
        // Fresh scheme each iteration so the merge cache is cold.
        flash::CodingScheme scheme = flash::CodingScheme::tlc124();
        benchmark::DoNotOptimize(scheme.idaMerge(0b110));
    }
}
BENCHMARK(BM_IdaMergeComputeTlc);

void
BM_IdaMergeCachedLookup(benchmark::State &state)
{
    flash::CodingScheme scheme = flash::CodingScheme::qlc1248();
    scheme.idaMerge(0b1100); // warm the cache
    for (auto _ : state)
        benchmark::DoNotOptimize(scheme.idaMerge(0b1100));
}
BENCHMARK(BM_IdaMergeCachedLookup);

void
BM_SensingCountQuery(benchmark::State &state)
{
    const flash::CodingScheme scheme = flash::CodingScheme::tlc124();
    int level = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(scheme.sensingCount(level));
        level = (level + 1) % 3;
    }
}
BENCHMARK(BM_SensingCountQuery);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue q;
        int sink = 0;
        for (int i = 0; i < n; ++i)
            q.schedule(sim::Time{i % 97}, [&sink] { ++sink; });
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

void
BM_MappingChurn(benchmark::State &state)
{
    ftl::MappingTable map(1 << 16, 1 << 17);
    std::uint64_t next = 0;
    for (auto _ : state) {
        const ftl::Lpn lpn = next % (1 << 16);
        const ftl::Ppn ppn = next % (1 << 17);
        if (map.reverse(ppn) != flash::kInvalidLpn)
            map.unmap(map.reverse(ppn));
        map.remap(lpn, ppn);
        ++next;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MappingChurn);

void
BM_SyntheticTraceGeneration(benchmark::State &state)
{
    workload::SyntheticConfig cfg;
    cfg.footprintPages = 100'000;
    cfg.totalRequests = ~std::uint64_t{0} >> 1; // effectively unbounded
    cfg.seed = 12;
    workload::SyntheticTrace trace(cfg);
    workload::IoRequest r;
    for (auto _ : state) {
        trace.next(r);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SyntheticTraceGeneration);

} // namespace

BENCHMARK_MAIN();
