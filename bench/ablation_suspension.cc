/**
 * @file
 * Composition study: IDA coding together with program/erase suspension
 * (Wu & He, FAST'12 — the paper's related work [32]).
 *
 * The paper positions IDA as a flash-level optimization orthogonal to
 * scheduler-level techniques; this harness verifies the claim: the
 * suspension mechanism removes read-behind-program stalls, IDA removes
 * sensing latency, and their benefits compose.
 */
#include "bench_util.hh"

int
main()
{
    using namespace ida;
    bench::banner("Composition - IDA x program/erase suspension",
                  "IDA's benefit is orthogonal to scheduler-level "
                  "techniques (Sec. VI)");

    stats::Table table({"workload", "resp base", "resp +susp",
                        "resp +IDA", "resp +both", "imp IDA",
                        "imp IDA (with susp)"});
    std::vector<double> impPlain, impSusp;
    for (const auto &preset : workload::paperWorkloads()) {
        ssd::SsdConfig base = bench::tlcSystem(false);
        ssd::SsdConfig susp = base;
        susp.timing.programSuspension = true;
        ssd::SsdConfig ida = bench::tlcSystem(true, 0.20);
        ssd::SsdConfig both = ida;
        both.timing.programSuspension = true;

        const auto r00 = bench::run(base, preset);
        const auto r01 = bench::run(susp, preset);
        const auto r10 = bench::run(ida, preset);
        const auto r11 = bench::run(both, preset);
        impPlain.push_back(r10.readImprovement(r00));
        impSusp.push_back(r11.readImprovement(r01));
        table.addRow({preset.name, stats::Table::num(r00.readRespUs, 1),
                      stats::Table::num(r01.readRespUs, 1),
                      stats::Table::num(r10.readRespUs, 1),
                      stats::Table::num(r11.readRespUs, 1),
                      stats::Table::pct(impPlain.back(), 1),
                      stats::Table::pct(impSusp.back(), 1)});
        std::fflush(stdout);
    }
    table.addRow({"average", "", "", "", "",
                  stats::Table::pct(bench::mean(impPlain), 1),
                  stats::Table::pct(bench::mean(impSusp), 1)});
    table.print(std::cout);
    std::printf("\nexpected shape: suspension lowers both baselines; "
                "IDA's relative benefit survives on top of it.\n");
    return 0;
}
