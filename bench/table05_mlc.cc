/**
 * @file
 * Regenerates paper Table V: IDA-Coding-E20 read response improvement on
 * an MLC device (65us/115us LSB/MSB reads).
 *
 * Paper shape: positive everywhere, ~14.9% average — lower than TLC
 * because MLC has a smaller latency spread to reclaim.
 */
#include "bench_util.hh"

int
main()
{
    using namespace ida;
    bench::banner("Table V - IDA-E20 on an MLC device",
                  "3.4%..31.8% per workload, 14.9% average "
                  "(lower than TLC's 28%)");

    // Paper Table V reference values.
    const std::pair<const char *, double> refs[] = {
        {"proj_1", 30.8}, {"proj_2", 8.2},  {"proj_3", 16.3},
        {"proj_4", 8.1},  {"hm_1", 7.8},    {"src1_0", 18.3},
        {"src1_1", 9.6},  {"src2_0", 3.4},  {"stg_1", 19.8},
        {"usr_1", 31.8},  {"usr_2", 10.6},
    };

    ssd::SsdConfig mlcBase = ssd::SsdConfig::paperMlc();
    ssd::SsdConfig mlcIda = mlcBase;
    mlcIda.ftl.enableIda = true;
    mlcIda.adjustErrorRate = 0.20;

    stats::Table table({"workload", "improvement", "paper"});
    std::vector<double> imps;
    for (const auto &preset : workload::paperWorkloads()) {
        const auto rb = bench::run(mlcBase, preset);
        const auto ri = bench::run(mlcIda, preset);
        const double imp = ri.readImprovement(rb);
        imps.push_back(imp);
        double paper = 0.0;
        for (const auto &[n, v] : refs) {
            if (preset.name == n)
                paper = v;
        }
        table.addRow({preset.name, stats::Table::pct(imp, 1),
                      stats::Table::num(paper, 1) + "%"});
        std::fflush(stdout);
    }
    table.addRow({"average", stats::Table::pct(bench::mean(imps), 1),
                  "14.9%"});
    table.print(std::cout);
    std::printf("\nexpected shape: positive everywhere, average below "
                "the TLC result (fig08).\n");
    return 0;
}
