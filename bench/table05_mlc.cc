/**
 * @file
 * Regenerates paper Table V: IDA-Coding-E20 read response improvement on
 * an MLC device (65us/115us LSB/MSB reads).
 *
 * Paper shape: positive everywhere, ~14.9% average — lower than TLC
 * because MLC has a smaller latency spread to reclaim.
 *
 * The 11 x 2 (workload x system) matrix runs through
 * workload::runMatrix; pass --jobs N to parallelize.
 */
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace ida;
    bench::banner("Table V - IDA-E20 on an MLC device",
                  "3.4%..31.8% per workload, 14.9% average "
                  "(lower than TLC's 28%)");

    // Paper Table V reference values.
    const std::pair<const char *, double> refs[] = {
        {"proj_1", 30.8}, {"proj_2", 8.2},  {"proj_3", 16.3},
        {"proj_4", 8.1},  {"hm_1", 7.8},    {"src1_0", 18.3},
        {"src1_1", 9.6},  {"src2_0", 3.4},  {"stg_1", 19.8},
        {"usr_1", 31.8},  {"usr_2", 10.6},
    };

    ssd::SsdConfig mlcBase = ssd::SsdConfig::paperMlc();
    ssd::SsdConfig mlcIda = mlcBase;
    mlcIda.ftl.enableIda = true;
    mlcIda.adjustErrorRate = 0.20;

    const auto &presets = workload::paperWorkloads();
    std::vector<workload::RunSpec> specs;
    for (const auto &preset : presets) {
        specs.push_back(
            bench::spec(mlcBase, preset, preset.name + "/MLC-Baseline"));
        specs.push_back(
            bench::spec(mlcIda, preset, preset.name + "/MLC-IDA-E20"));
    }
    const auto out =
        bench::runMatrixOrDie(specs, bench::batchOptions(argc, argv));

    stats::Table table({"workload", "improvement", "paper"});
    std::vector<double> imps;
    for (std::size_t i = 0; i < presets.size(); ++i) {
        const auto &rb = out.results[2 * i];
        const auto &ri = out.results[2 * i + 1];
        const double imp = ri.readImprovement(rb);
        imps.push_back(imp);
        double paper = 0.0;
        for (const auto &[n, v] : refs) {
            if (presets[i].name == n)
                paper = v;
        }
        table.addRow({presets[i].name, stats::Table::pct(imp, 1),
                      stats::Table::num(paper, 1) + "%"});
    }
    table.addRow({"average", stats::Table::pct(bench::mean(imps), 1),
                  "14.9%"});
    table.print(std::cout);
    std::printf("\nexpected shape: positive everywhere, average below "
                "the TLC result (fig08).\n");
    bench::exportJson("table05_mlc", specs, out);
    return 0;
}
