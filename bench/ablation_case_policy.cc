/**
 * @file
 * Ablation of the Table I case policy: the paper applies IDA to cases
 * 1-4, converting cases 1/3 into 2/4 by moving the valid LSB out. This
 * harness compares that against applying IDA only to the naturally
 * LSB-invalid cases 2/4 — quantifying how much of the benefit comes
 * from the case-1/3 conversion.
 */
#include "bench_util.hh"

int
main()
{
    using namespace ida;
    bench::banner("Ablation - Table I case policy (cases 1-4 vs only 2/4)",
                  "the paper's design choice: moving valid LSBs out "
                  "makes every MSB-valid wordline an IDA target");

    ssd::SsdConfig full = bench::tlcSystem(true, 0.20);
    ssd::SsdConfig only24 = full;
    only24.ftl.idaHandleCases13 = false;

    stats::Table table({"workload", "imp (cases 1-4)", "imp (cases 2/4)",
                        "adjusted WLs 1-4", "adjusted WLs 2/4"});
    std::vector<double> a, b;
    for (const auto &preset : workload::paperWorkloads()) {
        const auto rb = bench::run(bench::tlcSystem(false), preset);
        const auto r14 = bench::run(full, preset);
        const auto r24 = bench::run(only24, preset);
        a.push_back(r14.readImprovement(rb));
        b.push_back(r24.readImprovement(rb));
        table.addRow({preset.name,
                      stats::Table::pct(r14.readImprovement(rb), 1),
                      stats::Table::pct(r24.readImprovement(rb), 1),
                      std::to_string(r14.ftl.refresh.adjustedWordlines),
                      std::to_string(r24.ftl.refresh.adjustedWordlines)});
        std::fflush(stdout);
    }
    table.addRow({"average", stats::Table::pct(bench::mean(a), 1),
                  stats::Table::pct(bench::mean(b), 1), "", ""});
    table.print(std::cout);
    std::printf("\nexpected shape: cases 1-4 strictly beats cases 2/4 "
                "only.\n");
    return 0;
}
