/**
 * @file
 * Regenerates paper Fig. 6 and runs the QLC evaluation the paper leaves
 * as future work.
 *
 * Part 1 (the figure itself): with reflected-Gray QLC (1-2-4-8
 * sensings), invalidating the two low bits merges the 16 states into 4;
 * bit 4 drops 8 -> 2 sensings and bit 3 drops 4 -> 1 — printed directly
 * from the coding model.
 *
 * Part 2 (extension): full-system IDA-E20 on the QLC device, expected
 * to beat the TLC benefit because the latency spread is wider.
 */
#include "bench_util.hh"

#include "flash/coding.hh"

int
main()
{
    using namespace ida;
    bench::banner("Fig. 6 - QLC IDA merge + QLC device evaluation "
                  "(paper future work)",
                  "bits 4/3 drop from 8/4 sensings to 2/1 when the two "
                  "low bits are invalid");

    const flash::CodingScheme qlc = flash::CodingScheme::qlc1248();
    std::printf("\nconventional QLC sensing counts (LSB..MSB): ");
    for (int l = 0; l < qlc.bits(); ++l)
        std::printf("%d ", qlc.sensingCount(l));
    std::printf("\n");

    stats::Table merges({"invalid levels", "surviving states",
                         "bit1", "bit2", "bit3", "bit4"});
    const struct { const char *label; flash::LevelMask mask; } cases[] = {
        {"none (conventional)", 0},
        {"bit1 (LSB)", 0b1110},
        {"bits1+2 (paper Fig. 6)", 0b1100},
        {"bits1+2+3", 0b1000},
    };
    for (const auto &c : cases) {
        std::vector<std::string> row = {c.label};
        if (c.mask == 0) {
            row.push_back("16");
            for (int l = 0; l < 4; ++l)
                row.push_back(std::to_string(qlc.sensingCount(l)));
        } else {
            const auto &m = qlc.idaMerge(c.mask);
            row.push_back(std::to_string(m.survivors.size()));
            for (int l = 0; l < 4; ++l) {
                row.push_back((c.mask >> l) & 1
                                  ? std::to_string(m.sensingCounts[l])
                                  : std::string("-"));
            }
        }
        merges.addRow(std::move(row));
    }
    merges.print(std::cout);

    std::printf("\n-- QLC device evaluation (IDA-E20 vs baseline; "
                "extension) --\n");
    ssd::SsdConfig base = ssd::SsdConfig::qlcDevice();
    ssd::SsdConfig ida = base;
    ida.ftl.enableIda = true;
    ida.adjustErrorRate = 0.20;

    stats::Table table({"workload", "baseline(us)", "IDA-E20(us)",
                        "improvement"});
    std::vector<double> imps;
    for (const auto &preset : workload::paperWorkloads()) {
        const auto rb = bench::run(base, preset);
        const auto ri = bench::run(ida, preset);
        const double imp = ri.readImprovement(rb);
        imps.push_back(imp);
        table.addRow({preset.name, stats::Table::num(rb.readRespUs, 1),
                      stats::Table::num(ri.readRespUs, 1),
                      stats::Table::pct(imp, 1)});
        std::fflush(stdout);
    }
    table.addRow({"average", "", "",
                  stats::Table::pct(bench::mean(imps), 1)});
    table.print(std::cout);
    std::printf("\nexpected shape: QLC average exceeds the TLC average "
                "(wider latency spread to reclaim).\n");
    return 0;
}
