/**
 * @file
 * Endurance check (paper Sec. III-B "Flash Endurance Implication" and
 * Sec. III-C): IDA must not increase erase counts, and the modified
 * refresh writes *fewer* pages than the baseline refresh (it keeps the
 * beneficial pages in place instead of rewriting everything) — total
 * write count "decreases a little".
 */
#include "bench_util.hh"

int
main()
{
    using namespace ida;
    bench::banner("Endurance - erases and program counts, IDA vs "
                  "baseline",
                  "erase cycles unchanged or lower; total writes "
                  "slightly lower under IDA");

    stats::Table table({"workload", "erases (base)", "erases (IDA)",
                        "programs (base)", "programs (IDA)",
                        "program ratio", "max-wear (base/IDA)"});
    std::vector<double> ratios;
    for (const auto &preset : workload::paperWorkloads()) {
        const auto rb = bench::run(bench::tlcSystem(false), preset);
        const auto ri = bench::run(bench::tlcSystem(true, 0.20), preset);
        const double ratio = rb.chip.programs
            ? double(ri.chip.programs) / double(rb.chip.programs)
            : 0.0;
        ratios.push_back(ratio);
        table.addRow({preset.name, std::to_string(rb.chip.erases),
                      std::to_string(ri.chip.erases),
                      std::to_string(rb.chip.programs),
                      std::to_string(ri.chip.programs),
                      stats::Table::num(ratio, 3),
                      std::to_string(rb.wear.maxErase) + "/" +
                          std::to_string(ri.wear.maxErase)});
        std::fflush(stdout);
    }
    table.addRow({"average", "", "", "", "",
                  stats::Table::num(bench::mean(ratios), 3), ""});
    table.print(std::cout);
    std::printf("\nexpected shape: program ratio < 1 (IDA keeps "
                "N_target pages in place per refresh and only writes "
                "back the N_error disturbed ones); erases no higher "
                "than baseline.\n");
    return 0;
}
