/**
 * @file
 * Regenerates paper Fig. 10: storage throughput of IDA-Coding-E20
 * normalized to the baseline.
 *
 * Measured in closed loop (fixed queue depth) because an open-loop
 * trace replay is arrival-limited and cannot show device throughput
 * changes. Paper shape: every workload gains, ~10% on average — the
 * reduced read latencies outweigh the added refresh work.
 */
#include "bench_util.hh"

int
main()
{
    using namespace ida;
    bench::banner("Fig. 10 - device read throughput, IDA-E20 vs baseline",
                  "all workloads gain; +10% average");

    constexpr int kQueueDepth = 16;
    stats::Table table({"workload", "baseline MB/s", "IDA-E20 MB/s",
                        "normalized"});
    std::vector<double> normalized;
    for (const auto &preset : workload::paperWorkloads()) {
        const auto scaledPreset =
            workload::scaled(preset, bench::benchScale());
        const auto base = workload::runClosedLoop(
            bench::tlcSystem(false), scaledPreset, kQueueDepth);
        const auto idar = workload::runClosedLoop(
            bench::tlcSystem(true, 0.20), scaledPreset, kQueueDepth);
        const double n = base.throughputMBps > 0
            ? idar.throughputMBps / base.throughputMBps : 0.0;
        normalized.push_back(n);
        table.addRow({preset.name,
                      stats::Table::num(base.throughputMBps, 1),
                      stats::Table::num(idar.throughputMBps, 1),
                      stats::Table::num(n, 3)});
        std::fflush(stdout);
    }
    table.addRow({"average", "", "",
                  stats::Table::num(bench::mean(normalized), 3)});
    table.print(std::cout);
    std::printf("\naverage throughput improvement: %.1f%%\n",
                100.0 * (bench::mean(normalized) - 1.0));
    return 0;
}
