/**
 * @file
 * Regenerates paper Fig. 10: storage throughput of IDA-Coding-E20
 * normalized to the baseline.
 *
 * Measured in closed loop (fixed queue depth) because an open-loop
 * trace replay is arrival-limited and cannot show device throughput
 * changes. Paper shape: every workload gains, ~10% on average — the
 * reduced read latencies outweigh the added refresh work.
 *
 * The 11 x 2 (workload x system) matrix runs through
 * workload::runMatrix; pass --jobs N to parallelize.
 */
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace ida;
    bench::banner("Fig. 10 - device read throughput, IDA-E20 vs baseline",
                  "all workloads gain; +10% average");

    constexpr int kQueueDepth = 16;
    const auto &presets = workload::paperWorkloads();

    std::vector<workload::RunSpec> specs;
    for (const auto &preset : presets) {
        specs.push_back(bench::closedLoopSpec(
            bench::tlcSystem(false), preset, preset.name + "/Baseline",
            kQueueDepth));
        specs.push_back(bench::closedLoopSpec(
            bench::tlcSystem(true, 0.20), preset,
            preset.name + "/IDA-E20", kQueueDepth));
    }
    const auto out =
        bench::runMatrixOrDie(specs, bench::batchOptions(argc, argv));

    stats::Table table({"workload", "baseline MB/s", "IDA-E20 MB/s",
                        "normalized"});
    std::vector<double> normalized;
    for (std::size_t i = 0; i < presets.size(); ++i) {
        const auto &base = out.results[2 * i];
        const auto &idar = out.results[2 * i + 1];
        const double n = base.throughputMBps > 0
            ? idar.throughputMBps / base.throughputMBps : 0.0;
        normalized.push_back(n);
        table.addRow({presets[i].name,
                      stats::Table::num(base.throughputMBps, 1),
                      stats::Table::num(idar.throughputMBps, 1),
                      stats::Table::num(n, 3)});
    }
    table.addRow({"average", "", "",
                  stats::Table::num(bench::mean(normalized), 3)});
    table.print(std::cout);
    std::printf("\naverage throughput improvement: %.1f%%\n",
                100.0 * (bench::mean(normalized) - 1.0));
    bench::exportJson("fig10_throughput", specs, out);
    return 0;
}
