/**
 * @file
 * Simulation-kernel microbenchmark: the perf trajectory of the hot path.
 *
 * Two measurements, both deterministic in their simulated behavior so
 * only wall time varies between machines/builds:
 *
 *  1. Raw dispatch rate (events/sec): 256 self-rescheduling actors pump
 *     IDA_PERF_EVENTS events (default 4M) through one EventQueue with
 *     LCG-jittered delays and kernel-sized (40-byte) capture sets — the
 *     schedule/pop/invoke cycle and nothing else, i.e. the kernel
 *     overhead every simulated flash command pays.
 *
 *  2. End-to-end simulated-IOs/sec: one fig10-shaped closed-loop run
 *     (queue depth 16, the paper's saturation setup) of the first paper
 *     workload at IDA_PERF_SCALE (default 0.15) of its full length,
 *     counting measured host I/Os against the run's wall clock. This is
 *     the metric every figure/table harness is bound by.
 *
 * Emits $IDA_RESULTS_DIR/BENCH_kernel.json with the schema
 *   { "bench": "perf_kernel", "commit": <IDA_BENCH_COMMIT or "unknown">,
 *     "events_per_sec": N, "ios_per_sec": N, "wall_ms": N }
 * so every PR can record its numbers next to the committed baseline in
 * bench/baselines/ (see docs/PERF.md for the comparison workflow).
 *
 * Wall-clock results are machine-dependent by nature; compare only
 * numbers measured on the same machine.
 */
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <string>

#include "sim/event_queue.hh"
#include "ssd/config.hh"
#include "stats/json_writer.hh"
#include "workload/batch.hh"
#include "workload/presets.hh"
#include "workload/runner.hh"

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Per-process CPU seconds. The raw-dispatch stage divides by this, not
 * wall time: on a shared machine wall time charges the kernel for every
 * preemption, while CPU time prices exactly the work per event — which
 * is the quantity a kernel change moves.
 */
double
cpuSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           1e-9 * static_cast<double>(ts.tv_nsec);
}

std::uint64_t
envU64(const char *name, std::uint64_t dflt)
{
    if (const char *env = std::getenv(name)) {
        const long long v = std::atoll(env);
        if (v > 0)
            return static_cast<std::uint64_t>(v);
    }
    return dflt;
}

double
envDouble(const char *name, double dflt)
{
    if (const char *env = std::getenv(name)) {
        const double v = std::atof(env);
        if (v > 0.0)
            return v;
    }
    return dflt;
}

/**
 * The raw-dispatch harness: a fixed population of actors, each
 * rescheduling itself with a pseudo-random (but seed-deterministic)
 * delay until the shared event budget runs out.
 *
 * Two deliberate choices make this representative of simulator load
 * rather than a best-case toy:
 *  - each callback captures 40 bytes (the shape of the kernel's real
 *    completion chains, e.g. a done-callback plus a this pointer plus
 *    a timestamp) — beyond std::function's 16-byte SBO, i.e. exactly
 *    the capture class the old kernel heap-allocated per event;
 *  - 256 actors with delays spanning ~2k ticks keep a few hundred
 *    events pending, the scale a multi-die simulation sustains, with
 *    regular same-tick collisions exercising the FIFO tie-break.
 */
class ActorBench
{
  public:
    explicit ActorBench(std::uint64_t budget) : remaining_(budget) {}

    double
    run(int actors)
    {
        for (int a = 0; a < actors; ++a)
            step(0x9e3779b9u * static_cast<std::uint32_t>(a + 1),
                 Payload{{1, 2, 3}});
        const double start = cpuSeconds();
        q_.run();
        const double secs = cpuSeconds() - start;
        return static_cast<double>(q_.executed()) / secs;
    }

    std::uint64_t executed() const { return q_.executed(); }
    std::uint64_t checksum() const { return checksum_; }

  private:
    /** Ballast making the capture set kernel-sized (see file header). */
    struct Payload
    {
        std::uint64_t v[3];
    };

    void
    step(std::uint32_t rng, Payload p)
    {
        if (remaining_ == 0) {
            checksum_ += p.v[0] ^ p.v[1] ^ p.v[2];
            return;
        }
        --remaining_;
        rng = rng * 1664525u + 1013904223u;
        p.v[rng % 3] += rng;
        q_.scheduleAfter(ida::sim::Time{1 + (rng >> 21)},
                         [this, rng, p] { step(rng, p); });
    }

    ida::sim::EventQueue q_;
    std::uint64_t remaining_;
    std::uint64_t checksum_ = 0;
};

} // namespace

int
main()
{
    using namespace ida;

    const std::uint64_t events = envU64("IDA_PERF_EVENTS", 4'000'000);
    const double scale = envDouble("IDA_PERF_SCALE", 0.15);
    const char *commit_env = std::getenv("IDA_BENCH_COMMIT");
    const std::string commit = commit_env ? commit_env : "unknown";

    std::printf("perf_kernel: %llu raw events, fig10 workload at scale "
                "%.2f\n",
                static_cast<unsigned long long>(events), scale);

    const auto total_start = Clock::now();

    // Stage 1: raw kernel dispatch rate.
    ActorBench raw(events);
    const double events_per_sec = raw.run(256);
    std::printf("  events/sec: %.0f  (%llu events)\n", events_per_sec,
                static_cast<unsigned long long>(raw.executed()));

    // Stage 2: fig10-shaped end-to-end run (closed loop, depth 16).
    ssd::SsdConfig cfg = ssd::SsdConfig::paperTlc();
    cfg.ftl.enableIda = true;
    cfg.adjustErrorRate = 0.20;
    const workload::WorkloadPreset preset =
        workload::scaled(workload::paperWorkloads().front(), scale);
    const workload::RunResult res = workload::runClosedLoop(cfg, preset, 16);
    const double ios = static_cast<double>(res.measuredReads +
                                           res.measuredWrites);
    const double ios_per_sec =
        res.wallSeconds > 0.0 ? ios / res.wallSeconds : 0.0;
    std::printf("  ios/sec: %.0f  (%.0f measured IOs in %.2fs wall)\n",
                ios_per_sec, ios, res.wallSeconds);

    const double wall_ms = 1000.0 * secondsSince(total_start);
    std::printf("  total wall: %.0f ms\n", wall_ms);

    const std::string path = workload::resultsDir() + "/BENCH_kernel.json";
    {
        const std::filesystem::path p(path);
        std::error_code ec;
        if (p.has_parent_path())
            std::filesystem::create_directories(p.parent_path(), ec);
        std::ofstream os(p);
        if (!os) {
            std::fprintf(stderr, "perf_kernel: cannot write %s\n",
                         path.c_str());
            return 1;
        }
        stats::JsonWriter w(os);
        w.beginObject();
        w.field("bench", "perf_kernel");
        w.field("commit", commit);
        w.field("events_per_sec", events_per_sec);
        w.field("ios_per_sec", ios_per_sec);
        w.field("wall_ms", wall_ms);
        w.endObject();
        os << "\n";
    }
    std::printf("json: %s\n", path.c_str());
    return 0;
}
