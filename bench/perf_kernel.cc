/**
 * @file
 * Simulation-kernel microbenchmark: the perf trajectory of the hot path.
 *
 * Two measurements, both deterministic in their simulated behavior so
 * only wall time varies between machines/builds:
 *
 *  1. Raw dispatch rate (events/sec): 256 self-rescheduling actors pump
 *     IDA_PERF_EVENTS events (default 4M) through one EventQueue with
 *     LCG-jittered delays and kernel-sized (40-byte) capture sets — the
 *     schedule/pop/invoke cycle and nothing else, i.e. the kernel
 *     overhead every simulated flash command pays.
 *
 *  2. End-to-end simulated-IOs/sec: one fig10-shaped closed-loop run
 *     (queue depth 16, the paper's saturation setup) of the first paper
 *     workload at IDA_PERF_SCALE (default 0.15) of its full length,
 *     counting measured host I/Os against the run's wall clock. This is
 *     the metric every figure/table harness is bound by. Two variant
 *     legs re-run the same workload to price the read-path features a
 *     page-granular closed loop never touches:
 *       - sector mode: half the requests narrowed to sub-page sector
 *         ranges (exercises the mask-merge path and sector validity);
 *       - rcache: a 4096-page controller read cache enabled (exercises
 *         the cache probe/fill/invalidate path on every host I/O).
 *
 * Emits $IDA_RESULTS_DIR/BENCH_kernel.json with the schema
 *   { "bench": "perf_kernel", "commit": <IDA_BENCH_COMMIT or "unknown">,
 *     "events_per_sec": N, "ios_per_sec": N,
 *     "ios_per_sec_sector": N, "ios_per_sec_rcache": N,
 *     "wall_ms": N, "config": { geometry/coding/build fingerprint } }
 * so every PR can record its numbers next to the committed baseline in
 * bench/baselines/ (see docs/PERF.md for the comparison workflow). The
 * config fingerprint exists so a baseline diff can distinguish "the
 * code got slower" from "the benchmark is measuring a different device
 * or build" — tools/check_bench_json.sh refuses a baseline comparison
 * when fingerprints disagree.
 *
 * Wall-clock results are machine-dependent by nature; compare only
 * numbers measured on the same machine.
 */
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <string>

#include "sim/event_queue.hh"
#include "ssd/config.hh"
#include "stats/json_writer.hh"
#include "workload/batch.hh"
#include "workload/presets.hh"
#include "workload/runner.hh"

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Per-process CPU seconds. The raw-dispatch stage divides by this, not
 * wall time: on a shared machine wall time charges the kernel for every
 * preemption, while CPU time prices exactly the work per event — which
 * is the quantity a kernel change moves.
 */
double
cpuSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           1e-9 * static_cast<double>(ts.tv_nsec);
}

std::uint64_t
envU64(const char *name, std::uint64_t dflt)
{
    if (const char *env = std::getenv(name)) {
        const long long v = std::atoll(env);
        if (v > 0)
            return static_cast<std::uint64_t>(v);
    }
    return dflt;
}

double
envDouble(const char *name, double dflt)
{
    if (const char *env = std::getenv(name)) {
        const double v = std::atof(env);
        if (v > 0.0)
            return v;
    }
    return dflt;
}

/**
 * The raw-dispatch harness: a fixed population of actors, each
 * rescheduling itself with a pseudo-random (but seed-deterministic)
 * delay until the shared event budget runs out.
 *
 * Two deliberate choices make this representative of simulator load
 * rather than a best-case toy:
 *  - each callback captures 40 bytes (the shape of the kernel's real
 *    completion chains, e.g. a done-callback plus a this pointer plus
 *    a timestamp) — beyond std::function's 16-byte SBO, i.e. exactly
 *    the capture class the old kernel heap-allocated per event;
 *  - 256 actors with delays spanning ~2k ticks keep a few hundred
 *    events pending, the scale a multi-die simulation sustains, with
 *    regular same-tick collisions exercising the FIFO tie-break.
 */
class ActorBench
{
  public:
    explicit ActorBench(std::uint64_t budget) : remaining_(budget) {}

    double
    run(int actors)
    {
        for (int a = 0; a < actors; ++a)
            step(0x9e3779b9u * static_cast<std::uint32_t>(a + 1),
                 Payload{{1, 2, 3}});
        const double start = cpuSeconds();
        q_.run();
        const double secs = cpuSeconds() - start;
        return static_cast<double>(q_.executed()) / secs;
    }

    std::uint64_t executed() const { return q_.executed(); }
    std::uint64_t checksum() const { return checksum_; }

  private:
    /** Ballast making the capture set kernel-sized (see file header). */
    struct Payload
    {
        std::uint64_t v[3];
    };

    void
    step(std::uint32_t rng, Payload p)
    {
        if (remaining_ == 0) {
            checksum_ += p.v[0] ^ p.v[1] ^ p.v[2];
            return;
        }
        --remaining_;
        rng = rng * 1664525u + 1013904223u;
        p.v[rng % 3] += rng;
        q_.scheduleAfter(ida::sim::Time{1 + (rng >> 21)},
                         [this, rng, p] { step(rng, p); });
    }

    ida::sim::EventQueue q_;
    std::uint64_t remaining_;
    std::uint64_t checksum_ = 0;
};

const char *
codingName(ida::ssd::CodingChoice c)
{
    using ida::ssd::CodingChoice;
    switch (c) {
    case CodingChoice::Tlc124:
        return "Tlc124";
    case CodingChoice::Tlc232:
        return "Tlc232";
    case CodingChoice::Mlc12:
        return "Mlc12";
    case CodingChoice::Qlc1248:
        return "Qlc1248";
    }
    return "unknown";
}

/** One closed-loop leg; prints and returns its ios/sec. */
double
fig10Leg(const char *label, const ida::ssd::SsdConfig &cfg,
         const ida::workload::WorkloadPreset &preset)
{
    const ida::workload::RunResult res =
        ida::workload::runClosedLoop(cfg, preset, 16);
    const double ios =
        static_cast<double>(res.measuredReads + res.measuredWrites);
    const double per_sec =
        res.wallSeconds > 0.0 ? ios / res.wallSeconds : 0.0;
    std::printf("  ios/sec[%s]: %.0f  (%.0f measured IOs in %.2fs "
                "wall)\n",
                label, per_sec, ios, res.wallSeconds);
    return per_sec;
}

/**
 * The config/build fingerprint: everything that would make two
 * BENCH_kernel.json records incomparable even on the same machine.
 */
void
writeFingerprint(ida::stats::JsonWriter &w, const ida::ssd::SsdConfig &cfg)
{
    using ida::stats::JsonWriter;
    const ida::flash::Geometry &g = cfg.geometry;
    w.key("config");
    w.beginObject();
    w.key("geometry");
    w.beginObject();
    w.field("channels", std::uint64_t{g.channels});
    w.field("chips_per_channel", std::uint64_t{g.chipsPerChannel});
    w.field("dies_per_chip", std::uint64_t{g.diesPerChip});
    w.field("planes_per_die", std::uint64_t{g.planesPerDie});
    w.field("blocks_per_plane", std::uint64_t{g.blocksPerPlane});
    w.field("pages_per_block", std::uint64_t{g.pagesPerBlock});
    w.field("page_size_bytes", std::uint64_t{g.pageSizeBytes});
    w.field("sector_size_bytes", std::uint64_t{g.sectorSizeBytes});
    w.endObject();
    w.field("coding", codingName(cfg.coding));
    w.field("system", cfg.systemLabel());
    w.key("build");
    w.beginObject();
    w.field("compiler", __VERSION__);
#ifdef NDEBUG
    w.field("ndebug", true);
#else
    w.field("ndebug", false);
#endif
#ifdef IDA_AUDIT
    w.field("audit", true);
#else
    w.field("audit", false);
#endif
#ifdef IDA_TRACE
    w.field("trace", true);
#else
    w.field("trace", false);
#endif
    w.endObject();
    w.endObject();
}

} // namespace

int
main()
{
    using namespace ida;

    const std::uint64_t events = envU64("IDA_PERF_EVENTS", 4'000'000);
    const double scale = envDouble("IDA_PERF_SCALE", 0.15);
    const char *commit_env = std::getenv("IDA_BENCH_COMMIT");
    const std::string commit = commit_env ? commit_env : "unknown";

    std::printf("perf_kernel: %llu raw events, fig10 workload at scale "
                "%.2f\n",
                static_cast<unsigned long long>(events), scale);

    const auto total_start = Clock::now();

    // Stage 1: raw kernel dispatch rate.
    ActorBench raw(events);
    const double events_per_sec = raw.run(256);
    std::printf("  events/sec: %.0f  (%llu events)\n", events_per_sec,
                static_cast<unsigned long long>(raw.executed()));

    // Stage 2: fig10-shaped end-to-end runs (closed loop, depth 16).
    ssd::SsdConfig cfg = ssd::SsdConfig::paperTlc();
    cfg.ftl.enableIda = true;
    cfg.adjustErrorRate = 0.20;
    const workload::WorkloadPreset preset =
        workload::scaled(workload::paperWorkloads().front(), scale);
    const double ios_per_sec = fig10Leg("fig10", cfg, preset);

    // Sector-mode leg: half the stream narrowed to sub-page ranges so
    // the mask-merge and sector-validity paths are priced too.
    workload::WorkloadPreset sector_preset = preset;
    sector_preset.synth.subPageFraction = 0.5;
    sector_preset.synth.sectorsPerPage = cfg.geometry.sectorsPerPage();
    const double ios_per_sec_sector =
        fig10Leg("sector", cfg, sector_preset);

    // Read-cache leg: same stream behind a 4096-page controller cache
    // (every host read probes it; repeated reads hit DRAM).
    ssd::SsdConfig rcache_cfg = cfg;
    rcache_cfg.ftl.readCache.capacityPages = 4096;
    const double ios_per_sec_rcache =
        fig10Leg("rcache", rcache_cfg, preset);

    const double wall_ms = 1000.0 * secondsSince(total_start);
    std::printf("  total wall: %.0f ms\n", wall_ms);

    const std::string path = workload::resultsDir() + "/BENCH_kernel.json";
    {
        const std::filesystem::path p(path);
        std::error_code ec;
        if (p.has_parent_path())
            std::filesystem::create_directories(p.parent_path(), ec);
        std::ofstream os(p);
        if (!os) {
            std::fprintf(stderr, "perf_kernel: cannot write %s\n",
                         path.c_str());
            return 1;
        }
        stats::JsonWriter w(os);
        w.beginObject();
        w.field("bench", "perf_kernel");
        w.field("commit", commit);
        w.field("events_per_sec", events_per_sec);
        w.field("ios_per_sec", ios_per_sec);
        w.field("ios_per_sec_sector", ios_per_sec_sector);
        w.field("ios_per_sec_rcache", ios_per_sec_rcache);
        w.field("wall_ms", wall_ms);
        writeFingerprint(w, cfg);
        w.endObject();
        os << "\n";
    }
    std::printf("json: %s\n", path.c_str());
    return 0;
}
