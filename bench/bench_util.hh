/**
 * @file
 * Shared helpers for the paper-reproduction benchmark harnesses.
 *
 * Every harness regenerates one table or figure of the paper and prints
 * it as an aligned text table (plus the paper's reported values where
 * applicable, for side-by-side comparison).
 *
 * Run length is controlled by the IDA_BENCH_SCALE environment variable
 * (default 0.35): 1.0 replays each preset's full 400k-request trace,
 * smaller values shrink request count, duration and refresh period
 * together. Shapes are stable down to ~0.2; EXPERIMENTS.md numbers were
 * produced at the default.
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "ssd/config.hh"
#include "stats/table.hh"
#include "workload/presets.hh"
#include "workload/runner.hh"

namespace ida::bench {

/** Benchmark run-length scale from IDA_BENCH_SCALE (default 0.35). */
inline double
benchScale()
{
    if (const char *env = std::getenv("IDA_BENCH_SCALE")) {
        const double v = std::atof(env);
        if (v > 0.0)
            return v;
    }
    return 0.35;
}

/** The paper's evaluated TLC systems (Sec. IV-C): baseline + IDA-Ex. */
inline ssd::SsdConfig
tlcSystem(bool enable_ida, double error_rate = 0.20)
{
    ssd::SsdConfig cfg = ssd::SsdConfig::paperTlc();
    cfg.ftl.enableIda = enable_ida;
    cfg.adjustErrorRate = error_rate;
    return cfg;
}

/** Run one preset under one system at the bench scale. */
inline workload::RunResult
run(const ssd::SsdConfig &cfg, const workload::WorkloadPreset &preset)
{
    return workload::runPreset(cfg, workload::scaled(preset, benchScale()));
}

/** Print a header naming the figure/table being regenerated. */
inline void
banner(const std::string &what, const std::string &paper_summary)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", what.c_str());
    std::printf("paper result: %s\n", paper_summary.c_str());
    std::printf("scale: %.2f (set IDA_BENCH_SCALE to change)\n", benchScale());
    std::printf("==============================================================\n");
}

/** Geometric-mean helper for "average" rows (the paper uses means). */
inline double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

} // namespace ida::bench
