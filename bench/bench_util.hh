/**
 * @file
 * Shared helpers for the paper-reproduction benchmark harnesses.
 *
 * Every harness regenerates one table or figure of the paper and prints
 * it as an aligned text table (plus the paper's reported values where
 * applicable, for side-by-side comparison).
 *
 * Run length is controlled by the IDA_BENCH_SCALE environment variable
 * (default 0.35): 1.0 replays each preset's full 400k-request trace,
 * smaller values shrink request count, duration and refresh period
 * together. Shapes are stable down to ~0.2; docs/ARTIFACTS.md numbers
 * were produced at the default.
 *
 * Matrix-shaped harnesses execute through workload::runMatrix: pass
 * `--jobs N` (or set IDA_JOBS) to run the independent simulations on N
 * threads; the tables and JSON exports are byte-identical at any N (see
 * src/workload/batch.hh for the determinism contract). Per-run wall
 * times are printed to stderr — the one nondeterministic measurement,
 * kept off the byte-compared stdout. Each harness also archives its
 * full measurement set as `$IDA_RESULTS_DIR/<harness>.json` (default
 * `results/`).
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "ssd/config.hh"
#include "stats/table.hh"
#include "workload/batch.hh"
#include "workload/presets.hh"
#include "workload/runner.hh"

namespace ida::bench {

/** Benchmark run-length scale from IDA_BENCH_SCALE (default 0.35). */
inline double
benchScale()
{
    if (const char *env = std::getenv("IDA_BENCH_SCALE")) {
        const double v = std::atof(env);
        if (v > 0.0)
            return v;
    }
    return 0.35;
}

/** The paper's evaluated TLC systems (Sec. IV-C): baseline + IDA-Ex. */
inline ssd::SsdConfig
tlcSystem(bool enable_ida, double error_rate = 0.20)
{
    ssd::SsdConfig cfg = ssd::SsdConfig::paperTlc();
    cfg.ftl.enableIda = enable_ida;
    cfg.adjustErrorRate = error_rate;
    return cfg;
}

/** Run one preset under one system at the bench scale. */
inline workload::RunResult
run(const ssd::SsdConfig &cfg, const workload::WorkloadPreset &preset)
{
    return workload::runPreset(cfg, workload::scaled(preset, benchScale()));
}

/** Build one open-loop matrix cell at the bench scale. */
inline workload::RunSpec
spec(const ssd::SsdConfig &cfg, const workload::WorkloadPreset &preset,
     const std::string &tag)
{
    workload::RunSpec s;
    s.device = cfg;
    s.preset = workload::scaled(preset, benchScale());
    s.tag = tag;
    return s;
}

/** Build one closed-loop (saturation) matrix cell at the bench scale. */
inline workload::RunSpec
closedLoopSpec(const ssd::SsdConfig &cfg,
               const workload::WorkloadPreset &preset,
               const std::string &tag, int queue_depth)
{
    workload::RunSpec s = spec(cfg, preset, tag);
    s.kind = workload::RunKind::ClosedLoop;
    s.queueDepth = queue_depth;
    return s;
}

/** Batch options from the harness command line (--jobs N / IDA_JOBS). */
inline workload::BatchOptions
batchOptions(int argc, char **argv)
{
    workload::BatchOptions opts;
    opts.jobs = workload::jobsFromArgs(argc, argv);
    return opts;
}

/**
 * Execute a harness's matrix: runMatrix + failure gate. Any failed run
 * is a harness bug (the specs are static); report and exit non-zero
 * rather than print a table with holes.
 *
 * Per-run wall times are reported as a small table on *stderr*: humans
 * get ad-hoc perf observations without digging through the JSON
 * archive, while stdout stays byte-identical across --jobs levels (the
 * determinism contract run_smoke.sh checks — wall clock is the one
 * legitimately nondeterministic measurement).
 */
inline workload::BatchOutcome
runMatrixOrDie(const std::vector<workload::RunSpec> &specs,
               const workload::BatchOptions &opts)
{
    workload::BatchOutcome out = workload::runMatrix(specs, opts);
    if (!out.ok()) {
        for (std::size_t i = 0; i < out.errors.size(); ++i) {
            if (!out.errors[i].empty())
                std::fprintf(stderr, "run '%s' failed: %s\n",
                             specs[i].tag.c_str(), out.errors[i].c_str());
        }
        std::exit(1);
    }
    std::fprintf(stderr, "%-32s %10s\n", "run", "wall_s");
    double total = 0.0;
    for (std::size_t i = 0; i < out.results.size(); ++i) {
        std::fprintf(stderr, "%-32s %10.3f\n", specs[i].tag.c_str(),
                     out.results[i].wallSeconds);
        total += out.results[i].wallSeconds;
    }
    std::fprintf(stderr, "%-32s %10.3f  (%d jobs)\n", "total cpu",
                 total, out.jobs);
    return out;
}

/**
 * Archive a harness's matrix as $IDA_RESULTS_DIR/<harness>.json and
 * print the path (the path does not depend on --jobs, so stdout stays
 * byte-identical across parallelism levels).
 */
inline void
exportJson(const std::string &harness,
           const std::vector<workload::RunSpec> &specs,
           const workload::BatchOutcome &outcome)
{
    const std::string path = workload::resultsDir() + "/" + harness +
                             ".json";
    char scale[32];
    std::snprintf(scale, sizeof(scale), "%.2f", benchScale());
    if (workload::exportResults(path, harness, {{"scale", scale}}, specs,
                                outcome))
        std::printf("\njson: %s\n", path.c_str());
}

/** Print a header naming the figure/table being regenerated. */
inline void
banner(const std::string &what, const std::string &paper_summary)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", what.c_str());
    std::printf("paper result: %s\n", paper_summary.c_str());
    std::printf("scale: %.2f (set IDA_BENCH_SCALE to change)\n", benchScale());
    std::printf("==============================================================\n");
}

/** Geometric-mean helper for "average" rows (the paper uses means). */
inline double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

} // namespace ida::bench
