/**
 * @file
 * Sector-validity + read-cache ablation (docs/CACHING.md).
 *
 * Two questions the page-granular harnesses cannot answer:
 *
 *  A. How much IDA-exploitable invalidity does sector-granular validity
 *     tracking expose that a page-granular FTL never sees? The fig10-mix
 *     preset's sub-page writes and TRIMs partially invalidate pages; in
 *     page mode those TRIMs are dropped outright (counted as
 *     trims_dropped) and the partial writes pad to full pages, so the
 *     IDA-eligible wordline population shrinks.
 *
 *  B. Does IDA's read-latency benefit survive behind a controller DRAM
 *     read cache? Hits are served at DRAM latency regardless of coding,
 *     so the cache dilutes the benefit — the sweep shows the residual
 *     improvement at increasing cache capacities, with the cache's
 *     hit/miss/merge counters alongside.
 *
 * The 2 x 2 (validity x system) + 2 x 2 (capacity x system) matrix runs
 * through workload::runMatrix; pass --jobs N to parallelize. The device
 * enables the write buffer so sub-page writes exercise the
 * read-modify-write destage path, like the production controllers the
 * cache model follows.
 */
#include "bench_util.hh"

namespace {

/** TLC system with the controller DRAM features the sweep studies. */
ida::ssd::SsdConfig
cachedSystem(bool enable_ida, bool sector_mode, std::uint32_t cache_pages)
{
    ida::ssd::SsdConfig cfg = ida::bench::tlcSystem(enable_ida, 0.20);
    cfg.ftl.writeBuffer.capacityPages = 128;
    cfg.ftl.sectorMode = sector_mode;
    cfg.ftl.readCache.capacityPages = cache_pages;
    return cfg;
}

double
hitRate(const ida::workload::RunResult &r)
{
    const double total =
        static_cast<double>(r.cache.hits + r.cache.misses);
    return total > 0.0 ? static_cast<double>(r.cache.hits) / total : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ida;
    bench::banner("Ablation - sector-granular validity and read cache",
                  "sector masks expose invalidity page-granular FTLs "
                  "drop; IDA's benefit persists behind a DRAM cache");

    const workload::WorkloadPreset mix =
        workload::presetByName("fig10-mix");
    // Capacity points sized against the preset's 60k-page footprint
    // (scaled): ~5% and ~20% of the resident data.
    const std::vector<std::uint32_t> capacities = {0, 1024, 4096};

    std::vector<workload::RunSpec> specs;
    // Part A: validity granularity, cache off.
    for (const bool sector : {false, true}) {
        const std::string gran = sector ? "sector" : "page";
        specs.push_back(bench::spec(cachedSystem(false, sector, 0), mix,
                                    "A/" + gran + "/Baseline"));
        specs.push_back(bench::spec(cachedSystem(true, sector, 0), mix,
                                    "A/" + gran + "/IDA-E20"));
    }
    // Part B: cache capacity sweep, sector mode on. Capacity 0 reuses
    // the Part A sector cells' configuration but is re-run under its
    // own tag so the table rows stay self-describing in the JSON.
    for (const std::uint32_t cap : capacities) {
        const std::string label = "B/c" + std::to_string(cap);
        specs.push_back(bench::spec(cachedSystem(false, true, cap), mix,
                                    label + "/Baseline"));
        specs.push_back(bench::spec(cachedSystem(true, true, cap), mix,
                                    label + "/IDA-E20"));
    }
    const auto out =
        bench::runMatrixOrDie(specs, bench::batchOptions(argc, argv));

    // Part A: what sector masks expose that page granularity drops.
    stats::Table ta({"validity", "system", "read_mean_us",
                     "ida_eligible_wl", "partial_valid_pages",
                     "trims_dropped", "ida_benefit"});
    for (int g = 0; g < 2; ++g) {
        const auto &rb = out.results[static_cast<std::size_t>(2 * g)];
        const auto &ri = out.results[static_cast<std::size_t>(2 * g + 1)];
        const char *gran = g == 0 ? "page" : "sector";
        for (const auto *r : {&rb, &ri}) {
            ta.addRow({gran, r == &rb ? "Baseline" : "IDA-E20",
                       stats::Table::num(r->readRespUs, 1),
                       std::to_string(r->idaEligibleWordlines),
                       std::to_string(r->partialValidPages),
                       std::to_string(r->ftl.sector.trimsDroppedPageMode),
                       r == &rb ? "-"
                                : stats::Table::pct(
                                      ri.readImprovement(rb), 1)});
        }
    }
    std::printf("\nPart A - validity granularity (cache off)\n");
    ta.print(std::cout);

    // Part B: the cache sweep.
    stats::Table tb({"cache_pages", "system", "read_mean_us", "hit_rate",
                     "merged_fills", "ida_benefit"});
    for (std::size_t c = 0; c < capacities.size(); ++c) {
        const auto &rb = out.results[4 + 2 * c];
        const auto &ri = out.results[4 + 2 * c + 1];
        for (const auto *r : {&rb, &ri}) {
            tb.addRow({std::to_string(capacities[c]),
                       r == &rb ? "Baseline" : "IDA-E20",
                       stats::Table::num(r->readRespUs, 1),
                       stats::Table::pct(hitRate(*r), 1),
                       std::to_string(r->cache.mergedFills),
                       r == &rb ? "-"
                                : stats::Table::pct(
                                      ri.readImprovement(rb), 1)});
        }
    }
    std::printf("\nPart B - read-cache capacity sweep (sector mode)\n");
    tb.print(std::cout);

    std::printf("\nexpected shape: sector mode reports more IDA-eligible "
                "wordlines and nonzero partial_valid_pages (page mode "
                "drops every sub-page TRIM); the cache lifts hit rate "
                "with capacity and shrinks — but does not erase — IDA's "
                "read benefit.\n");
    bench::exportJson("ablation_cache_sweep", specs, out);
    return 0;
}
