/**
 * @file
 * Regenerates paper Fig. 4: the distribution of host reads over page
 * types and sibling-validity scenarios on the *baseline* system.
 *
 * Paper shape (left, 11 workloads): LSB/CSB/MSB reads roughly evenly
 * split; on average 18% of CSB reads find their LSB sibling invalid and
 * 30% of MSB reads find LSB and/or CSB invalid. Right: 9 workloads
 * binned by read ratio still show substantial MSB-invalid fractions.
 */
#include "bench_util.hh"

namespace {

void
emit(const std::vector<ida::workload::WorkloadPreset> &presets,
     const char *title)
{
    using namespace ida;
    std::printf("\n-- %s --\n", title);
    stats::Table table({"workload", "LSB%", "CSB%", "MSB%",
                        "CSB w/ LSB invalid (of CSB)",
                        "MSB w/ lower invalid (of MSB)", "paper MSB-inv%"});
    std::vector<double> csbInv, msbInv;
    for (const auto &preset : presets) {
        const auto r = bench::run(bench::tlcSystem(false), preset);
        const auto &rc = r.ftl.readClass;
        const double total = double(rc.byLevel[0] + rc.byLevel[1] +
                                    rc.byLevel[2]);
        const double csb = rc.byLevel[1] ? 100.0 *
            double(rc.byLevelLowerInvalid[1]) / double(rc.byLevel[1]) : 0;
        const double msb = rc.byLevel[2] ? 100.0 *
            double(rc.byLevelLowerInvalid[2]) / double(rc.byLevel[2]) : 0;
        csbInv.push_back(csb);
        msbInv.push_back(msb);
        table.addRow({preset.name,
                      stats::Table::num(100.0 * rc.byLevel[0] / total, 1),
                      stats::Table::num(100.0 * rc.byLevel[1] / total, 1),
                      stats::Table::num(100.0 * rc.byLevel[2] / total, 1),
                      stats::Table::num(csb, 1), stats::Table::num(msb, 1),
                      preset.paperMsbInvalidPct >= 0
                          ? stats::Table::num(preset.paperMsbInvalidPct, 1)
                          : "-"});
        std::fflush(stdout);
    }
    table.addRow({"average", "", "", "",
                  stats::Table::num(ida::bench::mean(csbInv), 1),
                  stats::Table::num(ida::bench::mean(msbInv), 1), ""});
    table.print(std::cout);
}

} // namespace

int
main()
{
    using namespace ida;
    bench::banner("Fig. 4 - read distribution across page types and "
                  "sibling validity",
                  "~even LSB/CSB/MSB split; avg 18% of CSB reads have "
                  "invalid LSB; avg 30% of MSB reads have invalid "
                  "LSB/CSB");
    emit(workload::paperWorkloads(), "11 paper workloads (Fig. 4 left)");
    emit(workload::extraWorkloads(),
         "9 read-ratio-binned workloads (Fig. 4 right)");
    return 0;
}
