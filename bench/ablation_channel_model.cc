/**
 * @file
 * Ablation of the channel model — the one systematic modelling choice
 * separating our absolute numbers from the paper's (see docs/ARTIFACTS.md).
 *
 * With `channelContention = true` every page transfer serializes on the
 * shared per-channel bus (16 dies per channel at 48us/page), so bursty
 * read traffic becomes *transfer*-bound and the sensing-latency savings
 * that IDA provides are partially masked. With it off (our default, and
 * apparently the DiskSim configuration the paper used — their >50%
 * per-workload improvements are unreachable under a serializing 48us/
 * page bus), reads are sensing-bound and the benefit is larger.
 */
#include "bench_util.hh"

int
main()
{
    using namespace ida;
    bench::banner("Ablation - shared-channel contention model",
                  "explains the magnitude gap between our normalized "
                  "results and the paper's");

    stats::Table table({"workload", "imp (contention off)",
                        "imp (contention on)"});
    std::vector<double> off, on;
    for (const auto &preset : workload::paperWorkloads()) {
        ssd::SsdConfig base_off = bench::tlcSystem(false);
        ssd::SsdConfig ida_off = bench::tlcSystem(true, 0.20);
        ssd::SsdConfig base_on = base_off;
        ssd::SsdConfig ida_on = ida_off;
        base_on.timing.channelContention = true;
        ida_on.timing.channelContention = true;

        const auto rb_off = bench::run(base_off, preset);
        const auto ri_off = bench::run(ida_off, preset);
        const auto rb_on = bench::run(base_on, preset);
        const auto ri_on = bench::run(ida_on, preset);
        off.push_back(ri_off.readImprovement(rb_off));
        on.push_back(ri_on.readImprovement(rb_on));
        table.addRow({preset.name,
                      stats::Table::pct(off.back(), 1),
                      stats::Table::pct(on.back(), 1)});
        std::fflush(stdout);
    }
    table.addRow({"average", stats::Table::pct(bench::mean(off), 1),
                  stats::Table::pct(bench::mean(on), 1)});
    table.print(std::cout);
    std::printf("\nexpected shape: contention-off >= contention-on; the "
                "IDA trend survives either way.\n");
    return 0;
}
