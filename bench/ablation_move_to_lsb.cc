/**
 * @file
 * Ablation of the rejected alternative (paper Sec. III-C): instead of
 * IDA re-coding, migrate would-be-IDA CSB/MSB pages into fast LSB
 * positions of new blocks. The paper argues this cannot win because
 * fast LSB positions are scarce and the displaced pages land on slow
 * positions; in our model the reservation burns sibling positions as
 * padding, inflating space use and program work.
 */
#include "bench_util.hh"

int
main()
{
    using namespace ida;
    bench::banner("Ablation - move-to-LSB alternative vs IDA coding",
                  "the alternative does not improve overall read "
                  "performance (Sec. III-C)");

    ssd::SsdConfig ida = bench::tlcSystem(true, 0.20);
    ssd::SsdConfig alt = bench::tlcSystem(false);
    alt.ftl.moveToLsbAlternative = true;

    stats::Table table({"workload", "imp (IDA-E20)", "imp (move-to-LSB)",
                        "fast-slot hits", "displaced"});
    std::vector<double> a, b;
    for (const auto &preset : workload::paperWorkloads()) {
        const auto rb = bench::run(bench::tlcSystem(false), preset);
        const auto r1 = bench::run(ida, preset);
        const auto r2 = bench::run(alt, preset);
        a.push_back(r1.readImprovement(rb));
        b.push_back(r2.readImprovement(rb));
        table.addRow({preset.name,
                      stats::Table::pct(r1.readImprovement(rb), 1),
                      stats::Table::pct(r2.readImprovement(rb), 1),
                      std::to_string(r2.ftl.refresh.fastSlotHits),
                      std::to_string(r2.ftl.refresh.displacedFastPages)});
        std::fflush(stdout);
    }
    table.addRow({"average", stats::Table::pct(bench::mean(a), 1),
                  stats::Table::pct(bench::mean(b), 1), "", ""});
    table.print(std::cout);
    std::printf("\nexpected shape: IDA wins; only one slot in three is "
                "an LSB slot, so two thirds of the hot CSB/MSB pages "
                "are displaced onto slow positions.\n");
    return 0;
}
