/**
 * @file
 * Ablation over the underlying coding scheme (paper Sec. III-B: "our
 * IDA coding is general, which can be combined with any coding scheme
 * in any high bit density flash").
 *
 * Compares IDA-E20's benefit on the default 1-2-4 TLC coding against
 * the alternative vendor 2-3-2 coding, whose read variation is smaller
 * (2/3/2 sensings => 50/100/50us under the tier model), leaving IDA
 * less to reclaim — the same reasoning the paper applies to MLC.
 *
 * The 11 x 4 (workload x system) matrix runs through
 * workload::runMatrix; pass --jobs N to parallelize.
 */
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace ida;
    bench::banner("Ablation - IDA on 1-2-4 vs 2-3-2 TLC codings",
                  "IDA helps both; less on 2-3-2 (smaller read "
                  "variation, like MLC in Table V)");

    ssd::SsdConfig base232 = bench::tlcSystem(false);
    base232.coding = ssd::CodingChoice::Tlc232;
    ssd::SsdConfig ida232 = bench::tlcSystem(true, 0.20);
    ida232.coding = ssd::CodingChoice::Tlc232;

    const auto &presets = workload::paperWorkloads();
    std::vector<workload::RunSpec> specs;
    for (const auto &preset : presets) {
        specs.push_back(bench::spec(bench::tlcSystem(false), preset,
                                    preset.name + "/124-Baseline"));
        specs.push_back(bench::spec(bench::tlcSystem(true, 0.20), preset,
                                    preset.name + "/124-IDA-E20"));
        specs.push_back(bench::spec(base232, preset,
                                    preset.name + "/232-Baseline"));
        specs.push_back(bench::spec(ida232, preset,
                                    preset.name + "/232-IDA-E20"));
    }
    const auto out =
        bench::runMatrixOrDie(specs, bench::batchOptions(argc, argv));

    stats::Table table({"workload", "imp (tlc 1-2-4)", "imp (tlc 2-3-2)"});
    std::vector<double> a, b;
    for (std::size_t i = 0; i < presets.size(); ++i) {
        const auto &rb124 = out.results[4 * i];
        const auto &ri124 = out.results[4 * i + 1];
        const auto &rb232 = out.results[4 * i + 2];
        const auto &ri232 = out.results[4 * i + 3];
        a.push_back(ri124.readImprovement(rb124));
        b.push_back(ri232.readImprovement(rb232));
        table.addRow({presets[i].name, stats::Table::pct(a.back(), 1),
                      stats::Table::pct(b.back(), 1)});
    }
    table.addRow({"average", stats::Table::pct(bench::mean(a), 1),
                  stats::Table::pct(bench::mean(b), 1)});
    table.print(std::cout);
    std::printf("\nexpected shape: both positive; 1-2-4 gains more than "
                "2-3-2.\n");
    bench::exportJson("ablation_coding_schemes", specs, out);
    return 0;
}
