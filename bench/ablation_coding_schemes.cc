/**
 * @file
 * Ablation over the underlying coding scheme (paper Sec. III-B: "our
 * IDA coding is general, which can be combined with any coding scheme
 * in any high bit density flash").
 *
 * Compares IDA-E20's benefit on the default 1-2-4 TLC coding against
 * the alternative vendor 2-3-2 coding, whose read variation is smaller
 * (2/3/2 sensings => 50/100/50us under the tier model), leaving IDA
 * less to reclaim — the same reasoning the paper applies to MLC.
 */
#include "bench_util.hh"

int
main()
{
    using namespace ida;
    bench::banner("Ablation - IDA on 1-2-4 vs 2-3-2 TLC codings",
                  "IDA helps both; less on 2-3-2 (smaller read "
                  "variation, like MLC in Table V)");

    stats::Table table({"workload", "imp (tlc 1-2-4)", "imp (tlc 2-3-2)"});
    std::vector<double> a, b;
    for (const auto &preset : workload::paperWorkloads()) {
        const auto rb124 = bench::run(bench::tlcSystem(false), preset);
        const auto ri124 = bench::run(bench::tlcSystem(true, 0.20),
                                      preset);

        ssd::SsdConfig base232 = bench::tlcSystem(false);
        base232.coding = ssd::CodingChoice::Tlc232;
        ssd::SsdConfig ida232 = bench::tlcSystem(true, 0.20);
        ida232.coding = ssd::CodingChoice::Tlc232;
        const auto rb232 = bench::run(base232, preset);
        const auto ri232 = bench::run(ida232, preset);

        a.push_back(ri124.readImprovement(rb124));
        b.push_back(ri232.readImprovement(rb232));
        table.addRow({preset.name, stats::Table::pct(a.back(), 1),
                      stats::Table::pct(b.back(), 1)});
        std::fflush(stdout);
    }
    table.addRow({"average", stats::Table::pct(bench::mean(a), 1),
                  stats::Table::pct(bench::mean(b), 1)});
    table.print(std::cout);
    std::printf("\nexpected shape: both positive; 1-2-4 gains more than "
                "2-3-2.\n");
    return 0;
}
